//! The scanner: a specification of lexer rules compiled to a DFA, plus the
//! maximal-munch tokenizer that produces [`Token`] streams.

use crate::charclass::CharSet;
use crate::dfa::ScannerDfa;
use crate::nfa::Nfa;
use crate::regex::Rx;
use crate::token::{Span, Token, TokenType};
use std::collections::HashMap;
use std::fmt;

/// One lexer rule in a [`LexerSpec`].
#[derive(Debug, Clone)]
pub struct LexRule {
    /// Rule name (token name, e.g. `ID`), or a synthesized name for
    /// literals (e.g. `'if'`).
    pub name: String,
    /// The pattern.
    pub rx: Rx,
    /// Token type emitted on a match (ignored when `skip`).
    pub ttype: TokenType,
    /// If `true`, matches are discarded (whitespace, comments).
    pub skip: bool,
}

/// Error constructing a scanner from a [`LexerSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexBuildError {
    /// A rule referenced an unknown fragment.
    UnknownFragment {
        /// The referencing rule.
        rule: String,
        /// The missing fragment name.
        fragment: String,
    },
    /// A rule (after fragment resolution) can match the empty string, which
    /// would make the scanner loop forever.
    NullableRule {
        /// The offending rule.
        rule: String,
    },
}

impl fmt::Display for LexBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexBuildError::UnknownFragment { rule, fragment } => {
                write!(f, "lexer rule {rule} references unknown fragment {fragment}")
            }
            LexBuildError::NullableRule { rule } => {
                write!(f, "lexer rule {rule} can match the empty string")
            }
        }
    }
}

impl std::error::Error for LexBuildError {}

/// A scanning error: no rule matched at an input position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The character no rule could start with.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: no lexer rule matches {:?}", self.line, self.col, self.ch)
    }
}

impl std::error::Error for LexError {}

/// An ordered set of lexer rules plus named fragments.
///
/// Rule order is priority order: when two rules match the same longest
/// prefix, the earlier rule wins (so keyword literals should precede
/// identifier rules, as the grammar builder arranges).
///
/// ```
/// use llstar_lexer::{LexerSpec, Rx, TokenType};
/// let mut spec = LexerSpec::new();
/// spec.push_rule("IF", Rx::parse("'if'")?, TokenType(1), false);
/// spec.push_rule("ID", Rx::parse("[a-z]+")?, TokenType(2), false);
/// spec.push_rule("WS", Rx::parse("[ \\t\\r\\n]+")?, TokenType(3), true);
/// let scanner = spec.build()?;
/// let toks = scanner.tokenize("if x")?;
/// let types: Vec<_> = toks.iter().map(|t| t.ttype).collect();
/// assert_eq!(types, vec![TokenType(1), TokenType(2), TokenType::EOF]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LexerSpec {
    rules: Vec<LexRule>,
    fragments: HashMap<String, Rx>,
}

impl LexerSpec {
    /// An empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule at the lowest priority so far.
    pub fn push_rule(&mut self, name: &str, rx: Rx, ttype: TokenType, skip: bool) {
        self.rules.push(LexRule { name: name.to_string(), rx, ttype, skip });
    }

    /// Inserts a rule at the *highest* priority (used for keyword literals).
    pub fn push_rule_front(&mut self, name: &str, rx: Rx, ttype: TokenType, skip: bool) {
        self.rules.insert(0, LexRule { name: name.to_string(), rx, ttype, skip });
    }

    /// Registers a named fragment usable from rule patterns.
    pub fn add_fragment(&mut self, name: &str, rx: Rx) {
        self.fragments.insert(name.to_string(), rx);
    }

    /// The rules in priority order.
    pub fn rules(&self) -> &[LexRule] {
        &self.rules
    }

    /// Compiles the specification into a [`Scanner`].
    ///
    /// # Errors
    /// Fails on unknown fragment references or rules that match the empty
    /// string.
    pub fn build(&self) -> Result<Scanner, LexBuildError> {
        let mut nfa = Nfa::new();
        let mut resolved_rules = Vec::with_capacity(self.rules.len());
        for (i, rule) in self.rules.iter().enumerate() {
            let resolved =
                rule.rx.resolve_fragments(&|name| self.fragments.get(name).cloned()).map_err(
                    |fragment| LexBuildError::UnknownFragment { rule: rule.name.clone(), fragment },
                )?;
            if resolved.is_nullable() {
                return Err(LexBuildError::NullableRule { rule: rule.name.clone() });
            }
            nfa.add_rule(i, &resolved);
            resolved_rules.push(rule.clone());
        }
        let dfa = ScannerDfa::from_nfa(&nfa);
        Ok(Scanner { dfa, rules: resolved_rules })
    }
}

/// A compiled scanner ready to tokenize input.
#[derive(Debug, Clone)]
pub struct Scanner {
    dfa: ScannerDfa,
    rules: Vec<LexRule>,
}

impl Scanner {
    /// Tokenizes `input` by repeated maximal-munch matching, appending a
    /// final EOF token. `skip` rules produce no tokens.
    ///
    /// # Errors
    /// Returns a [`LexError`] at the first position where no rule matches.
    pub fn tokenize(&self, input: &str) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::new();
        let mut offset = 0usize;
        let mut line = 1u32;
        let mut col = 1u32;
        while offset < input.len() {
            let rest = &input[offset..];
            match self.dfa.longest_match(rest) {
                Some((len, rule_idx)) => {
                    debug_assert!(len > 0, "scanner rules are non-nullable");
                    let rule = &self.rules[rule_idx];
                    if !rule.skip {
                        tokens.push(Token::new(
                            rule.ttype,
                            Span::new(offset, offset + len),
                            line,
                            col,
                        ));
                    }
                    for c in rest[..len].chars() {
                        if c == '\n' {
                            line += 1;
                            col = 1;
                        } else {
                            col += 1;
                        }
                    }
                    offset += len;
                }
                None => {
                    let ch = rest.chars().next().expect("offset < len");
                    return Err(LexError { offset, line, col, ch });
                }
            }
        }
        tokens.push(Token::eof(offset, line, col));
        Ok(tokens)
    }

    /// Number of states in the compiled scanner DFA.
    pub fn dfa_state_count(&self) -> usize {
        self.dfa.state_count()
    }

    /// The compiled scanner DFA (for code generators embedding it as
    /// static tables).
    pub fn dfa(&self) -> &ScannerDfa {
        &self.dfa
    }

    /// The rules this scanner was compiled from, in priority order.
    pub fn rules(&self) -> &[LexRule] {
        &self.rules
    }
}

/// Convenience: builds a spec from `(name, pattern, ttype, skip)` tuples.
///
/// # Errors
/// Propagates pattern-parse and build errors as strings.
pub fn scanner_from_patterns(rules: &[(&str, &str, TokenType, bool)]) -> Result<Scanner, String> {
    let mut spec = LexerSpec::new();
    for (name, pat, ttype, skip) in rules {
        let rx = Rx::parse(pat).map_err(|e| format!("{name}: {e}"))?;
        spec.push_rule(name, rx, *ttype, *skip);
    }
    spec.build().map_err(|e| e.to_string())
}

/// A whitespace charset usable by callers assembling specs by hand.
pub fn whitespace() -> CharSet {
    " \t\r\n".chars().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_scanner() -> Scanner {
        scanner_from_patterns(&[
            ("IF", "'if'", TokenType(1), false),
            ("ID", "[a-zA-Z_] [a-zA-Z0-9_]*", TokenType(2), false),
            ("INT", "[0-9]+", TokenType(3), false),
            ("EQ", "'='", TokenType(4), false),
            ("WS", "[ \\t\\r\\n]+", TokenType(99), true),
        ])
        .unwrap()
    }

    #[test]
    fn tokenizes_with_skip_and_eof() {
        let sc = simple_scanner();
        let src = "if x = 42";
        let toks = sc.tokenize(src).unwrap();
        let types: Vec<u32> = toks.iter().map(|t| t.ttype.0).collect();
        assert_eq!(types, vec![1, 2, 4, 3, 0]);
        assert_eq!(toks[1].text(src), "x");
        assert_eq!(toks[3].text(src), "42");
    }

    #[test]
    fn keyword_beats_identifier_by_priority() {
        let sc = simple_scanner();
        let toks = sc.tokenize("if iffy").unwrap();
        assert_eq!(toks[0].ttype, TokenType(1), "exact 'if' is the keyword");
        assert_eq!(toks[1].ttype, TokenType(2), "'iffy' is an identifier (maximal munch)");
    }

    #[test]
    fn line_and_column_tracking() {
        let sc = simple_scanner();
        let toks = sc.tokenize("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn lex_error_position() {
        let sc = simple_scanner();
        let err = sc.tokenize("ok $bad").unwrap_err();
        assert_eq!(err.ch, '$');
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 4);
        assert!(err.to_string().contains("no lexer rule matches"));
    }

    #[test]
    fn empty_input_yields_only_eof() {
        let sc = simple_scanner();
        let toks = sc.tokenize("").unwrap();
        assert_eq!(toks.len(), 1);
        assert!(toks[0].ttype.is_eof());
    }

    #[test]
    fn fragments_resolve() {
        let mut spec = LexerSpec::new();
        spec.add_fragment("Digit", Rx::parse("[0-9]").unwrap());
        spec.add_fragment("Hex", Rx::parse("[0-9a-fA-F]").unwrap());
        spec.push_rule("NUM", Rx::parse("Digit+ | '0x' Hex+").unwrap(), TokenType(1), false);
        let sc = spec.build().unwrap();
        let toks = sc.tokenize("0xFF").unwrap();
        assert_eq!(toks[0].ttype, TokenType(1));
        assert_eq!(toks[0].span.len(), 4);
    }

    #[test]
    fn unknown_fragment_is_an_error() {
        let mut spec = LexerSpec::new();
        spec.push_rule("X", Rx::parse("Digit+").unwrap(), TokenType(1), false);
        match spec.build() {
            Err(LexBuildError::UnknownFragment { rule, fragment }) => {
                assert_eq!(rule, "X");
                assert_eq!(fragment, "Digit");
            }
            other => panic!("expected UnknownFragment, got {other:?}"),
        }
    }

    #[test]
    fn nullable_rule_is_an_error() {
        let mut spec = LexerSpec::new();
        spec.push_rule("BAD", Rx::parse("[a-z]*").unwrap(), TokenType(1), false);
        assert!(matches!(spec.build(), Err(LexBuildError::NullableRule { .. })));
    }

    #[test]
    fn push_rule_front_takes_priority() {
        let mut spec = LexerSpec::new();
        spec.push_rule("ID", Rx::parse("[a-z]+").unwrap(), TokenType(2), false);
        spec.push_rule_front("KW", Rx::parse("'while'").unwrap(), TokenType(1), false);
        let sc = spec.build().unwrap();
        let toks = sc.tokenize("while").unwrap();
        assert_eq!(toks[0].ttype, TokenType(1));
    }

    #[test]
    fn comment_rule_skips_to_newline() {
        let sc = scanner_from_patterns(&[
            ("ID", "[a-z]+", TokenType(1), false),
            ("COMMENT", "'//' (~[\\n])*'\\n'", TokenType(9), true),
            ("WS", "[ \\t\\r\\n]+", TokenType(9), true),
        ])
        .unwrap();
        let toks = sc.tokenize("ab // commentary\ncd").unwrap();
        let types: Vec<u32> = toks.iter().map(|t| t.ttype.0).collect();
        assert_eq!(types, vec![1, 1, 0]);
    }
}
