//! Token types shared by the lexer, the grammar representation, and the
//! parser runtime.
//!
//! A [`TokenType`] is a small integer assigned by the grammar's token
//! vocabulary. Type `0` is reserved for end-of-file ([`TokenType::EOF`]).

use std::fmt;

/// A terminal symbol category, as assigned by a grammar's token vocabulary.
///
/// Token types are dense small integers so that lookahead-DFA edges and
/// parser match sets can be indexed cheaply.
///
/// ```
/// use llstar_lexer::TokenType;
/// let t = TokenType(3);
/// assert!(!t.is_eof());
/// assert!(TokenType::EOF.is_eof());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenType(pub u32);

impl TokenType {
    /// The end-of-file sentinel token type (always type `0`).
    pub const EOF: TokenType = TokenType(0);

    /// Returns `true` for the EOF sentinel.
    pub fn is_eof(self) -> bool {
        self == Self::EOF
    }

    /// The raw index, usable for dense table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TokenType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_eof() {
            write!(f, "<EOF>")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "span end {end} precedes start {start}");
        Span { start, end }
    }

    /// Number of bytes covered.
    pub fn len(self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// The source slice this span denotes.
    pub fn slice(self, source: &str) -> &str {
        &source[self.start..self.end]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A lexed token: a token type plus its location in the source.
///
/// Tokens do not own their text; use [`Token::text`] with the original
/// source to recover it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token {
    /// The terminal category.
    pub ttype: TokenType,
    /// Where in the source the token appeared.
    pub span: Span,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Token {
    /// Creates a token.
    pub fn new(ttype: TokenType, span: Span, line: u32, col: u32) -> Self {
        Token { ttype, span, line, col }
    }

    /// Creates the EOF token positioned at `offset`.
    pub fn eof(offset: usize, line: u32, col: u32) -> Self {
        Token { ttype: TokenType::EOF, span: Span::new(offset, offset), line, col }
    }

    /// The token's text within `source`.
    pub fn text(self, source: &str) -> &str {
        self.span.slice(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_is_type_zero() {
        assert_eq!(TokenType::EOF, TokenType(0));
        assert!(TokenType::EOF.is_eof());
        assert!(!TokenType(1).is_eof());
    }

    #[test]
    fn span_slicing() {
        let s = "hello world";
        let sp = Span::new(6, 11);
        assert_eq!(sp.slice(s), "world");
        assert_eq!(sp.len(), 5);
        assert!(!sp.is_empty());
        assert!(Span::new(3, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn span_rejects_reversed() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn token_text() {
        let src = "let x = 1;";
        let tok = Token::new(TokenType(4), Span::new(4, 5), 1, 5);
        assert_eq!(tok.text(src), "x");
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenType::EOF.to_string(), "<EOF>");
        assert_eq!(TokenType(7).to_string(), "t7");
        assert_eq!(Span::new(1, 4).to_string(), "1..4");
    }
}
