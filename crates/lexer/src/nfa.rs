//! Thompson NFA construction from lexer-rule regular expressions.
//!
//! Each lexer rule contributes one NFA fragment; all fragments share a
//! single start state so that the scanner DFA can match every rule
//! simultaneously (maximal munch with rule-priority tie-breaking).

use crate::charclass::CharSet;
use crate::regex::Rx;

/// Identifier of an NFA state (index into [`Nfa::states`]).
pub type NfaStateId = usize;

/// One NFA state: epsilon successors, at most one labelled edge, and an
/// optional accept tag.
#[derive(Debug, Clone, Default)]
pub struct NfaState {
    /// Epsilon transitions.
    pub eps: Vec<NfaStateId>,
    /// A labelled transition, if any (Thompson states need at most one).
    pub edge: Option<(CharSet, NfaStateId)>,
    /// If `Some(rule)`, reaching this state accepts lexer rule `rule`.
    pub accept: Option<usize>,
}

/// A nondeterministic finite automaton over characters, with rule-tagged
/// accept states.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// All states; state `0` is the shared start state.
    pub states: Vec<NfaState>,
    /// The start state (always `0`).
    pub start: NfaStateId,
}

impl Nfa {
    /// Creates an NFA containing only a start state.
    pub fn new() -> Self {
        Nfa { states: vec![NfaState::default()], start: 0 }
    }

    fn add_state(&mut self) -> NfaStateId {
        self.states.push(NfaState::default());
        self.states.len() - 1
    }

    fn add_eps(&mut self, from: NfaStateId, to: NfaStateId) {
        self.states[from].eps.push(to);
    }

    /// Adds `rx` as lexer rule number `rule`, reachable from the shared
    /// start state. Fragments must already be resolved.
    ///
    /// # Panics
    /// Panics if `rx` still contains [`Rx::Fragment`] nodes.
    pub fn add_rule(&mut self, rule: usize, rx: &Rx) {
        let (entry, exit) = self.build(rx);
        self.add_eps(self.start, entry);
        self.states[exit].accept = Some(rule);
    }

    /// Thompson construction; returns `(entry, exit)` of the fragment.
    fn build(&mut self, rx: &Rx) -> (NfaStateId, NfaStateId) {
        match rx {
            Rx::Empty => {
                let s = self.add_state();
                let e = self.add_state();
                self.add_eps(s, e);
                (s, e)
            }
            Rx::Set(set) => {
                let s = self.add_state();
                let e = self.add_state();
                self.states[s].edge = Some((set.clone(), e));
                (s, e)
            }
            Rx::Seq(items) => {
                let mut entry = None;
                let mut prev_exit: Option<NfaStateId> = None;
                for item in items {
                    let (s, e) = self.build(item);
                    if let Some(pe) = prev_exit {
                        self.add_eps(pe, s);
                    } else {
                        entry = Some(s);
                    }
                    prev_exit = Some(e);
                }
                match (entry, prev_exit) {
                    (Some(s), Some(e)) => (s, e),
                    _ => self.build(&Rx::Empty),
                }
            }
            Rx::Alt(items) => {
                let s = self.add_state();
                let e = self.add_state();
                for item in items {
                    let (is, ie) = self.build(item);
                    self.add_eps(s, is);
                    self.add_eps(ie, e);
                }
                (s, e)
            }
            Rx::Star(inner) => {
                let s = self.add_state();
                let e = self.add_state();
                let (is, ie) = self.build(inner);
                self.add_eps(s, is);
                self.add_eps(s, e);
                self.add_eps(ie, is);
                self.add_eps(ie, e);
                (s, e)
            }
            Rx::Plus(inner) => {
                let s = self.add_state();
                let e = self.add_state();
                let (is, ie) = self.build(inner);
                self.add_eps(s, is);
                self.add_eps(ie, is);
                self.add_eps(ie, e);
                (s, e)
            }
            Rx::Opt(inner) => {
                let s = self.add_state();
                let e = self.add_state();
                let (is, ie) = self.build(inner);
                self.add_eps(s, is);
                self.add_eps(s, e);
                self.add_eps(ie, e);
                (s, e)
            }
            Rx::Fragment(name) => {
                panic!("unresolved lexer fragment {name:?} reached NFA construction")
            }
        }
    }

    /// Epsilon closure of a set of states (sorted, deduplicated).
    pub fn eps_closure(&self, seed: &[NfaStateId]) -> Vec<NfaStateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<NfaStateId> = Vec::with_capacity(seed.len());
        for &s in seed {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            out.push(s);
            for &t in &self.states[s].eps {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Simulates the NFA on `input`, returning the longest match length and
    /// the lowest-numbered accepting rule at that length, if any.
    ///
    /// This is the slow reference implementation that the DFA is tested
    /// against.
    pub fn longest_match(&self, input: &str) -> Option<(usize, usize)> {
        let mut current = self.eps_closure(&[self.start]);
        let mut best: Option<(usize, usize)> = None;
        let mut consumed = 0usize;
        let record = |states: &[NfaStateId], consumed: usize, best: &mut Option<(usize, usize)>| {
            let rule = states.iter().filter_map(|&s| self.states[s].accept).min();
            if let Some(r) = rule {
                if consumed > 0 {
                    *best = Some((consumed, r));
                }
            }
        };
        record(&current, consumed, &mut best);
        for c in input.chars() {
            let mut next: Vec<NfaStateId> = Vec::new();
            for &s in &current {
                if let Some((set, t)) = &self.states[s].edge {
                    if set.contains(c) {
                        next.push(*t);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            consumed += c.len_utf8();
            current = self.eps_closure(&next);
            record(&current, consumed, &mut best);
        }
        best
    }

    /// All distinct edge labels in the NFA (for alphabet partitioning).
    pub fn edge_sets(&self) -> Vec<CharSet> {
        self.states.iter().filter_map(|s| s.edge.as_ref().map(|(set, _)| set.clone())).collect()
    }
}

impl Default for Nfa {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfa_for(patterns: &[&str]) -> Nfa {
        let mut nfa = Nfa::new();
        for (i, p) in patterns.iter().enumerate() {
            nfa.add_rule(i, &Rx::parse(p).unwrap());
        }
        nfa
    }

    #[test]
    fn single_literal() {
        let nfa = nfa_for(&["'if'"]);
        assert_eq!(nfa.longest_match("if"), Some((2, 0)));
        assert_eq!(nfa.longest_match("ifx"), Some((2, 0)));
        assert_eq!(nfa.longest_match("i"), None);
    }

    #[test]
    fn maximal_munch() {
        let nfa = nfa_for(&["'i'", "'if'"]);
        // Longest match wins even though rule 0 matches a prefix.
        assert_eq!(nfa.longest_match("if"), Some((2, 1)));
        assert_eq!(nfa.longest_match("ix"), Some((1, 0)));
    }

    #[test]
    fn priority_tie_break() {
        // Both rules match "ab"; the lower-numbered rule wins.
        let nfa = nfa_for(&["'ab'", "[a-z]+"]);
        assert_eq!(nfa.longest_match("ab"), Some((2, 0)));
        assert_eq!(nfa.longest_match("abc"), Some((3, 1)));
    }

    #[test]
    fn star_plus_opt() {
        let nfa = nfa_for(&["[0-9]+ ('.' [0-9]*)?"]);
        assert_eq!(nfa.longest_match("123"), Some((3, 0)));
        assert_eq!(nfa.longest_match("12.5x"), Some((4, 0)));
        assert_eq!(nfa.longest_match("12."), Some((3, 0)));
        assert_eq!(nfa.longest_match("."), None);
    }

    #[test]
    fn empty_match_is_not_a_token() {
        let nfa = nfa_for(&["'a'*"]);
        // A nullable rule must not produce zero-length matches.
        assert_eq!(nfa.longest_match("bbb"), None);
        assert_eq!(nfa.longest_match("aab"), Some((2, 0)));
    }

    #[test]
    fn unicode_input() {
        let nfa = nfa_for(&["[α-ω]+"]);
        assert_eq!(nfa.longest_match("αβγ!"), Some(("αβγ".len(), 0)));
    }

    #[test]
    #[should_panic(expected = "unresolved lexer fragment")]
    fn unresolved_fragment_panics() {
        let mut nfa = Nfa::new();
        nfa.add_rule(0, &Rx::Fragment("Digit".into()));
    }
}
