//! Character sets represented as sorted, disjoint, non-adjacent ranges of
//! Unicode scalar values.
//!
//! [`CharSet`] is the alphabet abstraction used by lexer-rule regular
//! expressions and by the scanner NFA/DFA: edges are labelled with sets
//! rather than single characters so that `[a-zA-Z_]`-style classes stay
//! compact.

use std::fmt;

/// Maximum Unicode scalar value.
const MAX_CHAR: u32 = char::MAX as u32;

/// An immutable set of characters stored as sorted disjoint inclusive
/// ranges.
///
/// Invariants (maintained by all constructors):
/// * ranges are sorted by start,
/// * ranges do not overlap and are not adjacent (`hi + 1 < next.lo`),
/// * every bound is a valid scalar-value ordinal (surrogates may appear in
///   bounds arithmetic internally but never match a Rust `char`).
///
/// ```
/// use llstar_lexer::CharSet;
/// let ident = CharSet::range('a', 'z').union(&CharSet::range('A', 'Z')).union(&CharSet::single('_'));
/// assert!(ident.contains('q'));
/// assert!(ident.contains('_'));
/// assert!(!ident.contains('1'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CharSet {
    /// Inclusive `(lo, hi)` ordinal ranges.
    ranges: Vec<(u32, u32)>,
}

impl CharSet {
    /// The empty set.
    pub fn empty() -> Self {
        CharSet { ranges: Vec::new() }
    }

    /// The set of every Unicode scalar value.
    pub fn any() -> Self {
        CharSet { ranges: vec![(0, MAX_CHAR)] }
    }

    /// A single-character set.
    pub fn single(c: char) -> Self {
        CharSet { ranges: vec![(c as u32, c as u32)] }
    }

    /// The inclusive range `lo..=hi`.
    ///
    /// # Panics
    /// Panics if `hi < lo`.
    pub fn range(lo: char, hi: char) -> Self {
        assert!(hi >= lo, "char range {hi:?} precedes {lo:?}");
        CharSet { ranges: vec![(lo as u32, hi as u32)] }
    }

    /// Builds a set from arbitrary (possibly overlapping, unsorted)
    /// inclusive ordinal ranges.
    pub fn from_ranges<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        let mut v: Vec<(u32, u32)> = iter.into_iter().filter(|(lo, hi)| lo <= hi).collect();
        v.sort_unstable();
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(v.len());
        for (lo, hi) in v {
            match out.last_mut() {
                Some((_, phi)) if lo <= phi.saturating_add(1) => *phi = (*phi).max(hi),
                _ => out.push((lo, hi)),
            }
        }
        CharSet { ranges: out }
    }

    /// Whether the set contains `c`.
    pub fn contains(&self, c: char) -> bool {
        let x = c as u32;
        self.ranges
            .binary_search_by(|&(lo, hi)| {
                if x < lo {
                    std::cmp::Ordering::Greater
                } else if x > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of characters in the set (as ordinals; counts surrogate
    /// ordinals in wide ranges, which never match real input).
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|&(lo, hi)| (hi - lo + 1) as u64).sum()
    }

    /// The sorted disjoint inclusive ranges backing the set.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Set union.
    pub fn union(&self, other: &CharSet) -> CharSet {
        CharSet::from_ranges(self.ranges.iter().chain(other.ranges.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &CharSet) -> CharSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (alo, ahi) = self.ranges[i];
            let (blo, bhi) = other.ranges[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        CharSet { ranges: out }
    }

    /// Set complement with respect to all scalar values.
    pub fn complement(&self) -> CharSet {
        let mut out = Vec::new();
        let mut next = 0u32;
        for &(lo, hi) in &self.ranges {
            if lo > next {
                out.push((next, lo - 1));
            }
            next = match hi.checked_add(1) {
                Some(n) => n,
                None => return CharSet { ranges: out },
            };
        }
        if next <= MAX_CHAR {
            out.push((next, MAX_CHAR));
        }
        CharSet { ranges: out }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &CharSet) -> CharSet {
        self.intersect(&other.complement())
    }

    /// Whether the two sets share any character.
    pub fn intersects(&self, other: &CharSet) -> bool {
        !self.intersect(other).is_empty()
    }

    /// An arbitrary representative character, if the set is non-empty.
    ///
    /// Skips the surrogate gap so that the result is always a valid `char`.
    pub fn example(&self) -> Option<char> {
        for &(lo, hi) in &self.ranges {
            for x in lo..=hi {
                if let Some(c) = char::from_u32(x) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Iterates over the characters of the set (skipping surrogate
    /// ordinals). Intended for small sets; enormous sets iterate lazily.
    pub fn chars(&self) -> impl Iterator<Item = char> + '_ {
        self.ranges.iter().flat_map(|&(lo, hi)| (lo..=hi).filter_map(char::from_u32))
    }
}

impl FromIterator<char> for CharSet {
    fn from_iter<I: IntoIterator<Item = char>>(iter: I) -> Self {
        CharSet::from_ranges(iter.into_iter().map(|c| (c as u32, c as u32)))
    }
}

impl fmt::Display for CharSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for &(lo, hi) in &self.ranges {
            let show = |f: &mut fmt::Formatter<'_>, x: u32| -> fmt::Result {
                match char::from_u32(x) {
                    Some(c) if !c.is_control() && c != '\\' && c != ']' && c != '-' => {
                        write!(f, "{c}")
                    }
                    _ => write!(f, "\\u{{{x:x}}}"),
                }
            };
            show(f, lo)?;
            if hi != lo {
                write!(f, "-")?;
                show(f, hi)?;
            }
        }
        write!(f, "]")
    }
}

/// Partitions a collection of character sets into the coarsest collection of
/// disjoint sets such that every input set is a union of partition blocks.
///
/// This is the standard alphabet-compression step before DFA subset
/// construction: each block can be treated as a single input symbol.
pub fn disjoint_partition(sets: &[CharSet]) -> Vec<CharSet> {
    let mut blocks: Vec<CharSet> = Vec::new();
    for s in sets {
        if s.is_empty() {
            continue;
        }
        let mut rest = s.clone();
        let mut next_blocks = Vec::with_capacity(blocks.len() + 1);
        for b in blocks.drain(..) {
            let inter = b.intersect(&rest);
            if inter.is_empty() {
                next_blocks.push(b);
                continue;
            }
            let b_only = b.subtract(&inter);
            if !b_only.is_empty() {
                next_blocks.push(b_only);
            }
            next_blocks.push(inter.clone());
            rest = rest.subtract(&inter);
        }
        if !rest.is_empty() {
            next_blocks.push(rest);
        }
        blocks = next_blocks;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use llstar_rng::Rng64;

    #[test]
    fn basics() {
        let s = CharSet::range('a', 'f');
        assert!(s.contains('a'));
        assert!(s.contains('f'));
        assert!(!s.contains('g'));
        assert_eq!(s.len(), 6);
        assert_eq!(s.example(), Some('a'));
    }

    #[test]
    fn union_merges_adjacent() {
        let s = CharSet::range('a', 'c').union(&CharSet::range('d', 'f'));
        assert_eq!(s.ranges().len(), 1, "adjacent ranges must coalesce");
        assert_eq!(s, CharSet::range('a', 'f'));
    }

    #[test]
    fn complement_round_trip() {
        let s = CharSet::range('0', '9');
        let c = s.complement();
        assert!(!c.contains('5'));
        assert!(c.contains('a'));
        assert_eq!(c.complement(), s);
    }

    #[test]
    fn empty_and_any() {
        assert!(CharSet::empty().is_empty());
        assert!(CharSet::any().contains('\u{10FFFF}'));
        assert_eq!(CharSet::any().complement(), CharSet::empty());
        assert_eq!(CharSet::empty().complement(), CharSet::any());
    }

    #[test]
    fn intersect_and_subtract() {
        let a = CharSet::range('a', 'm');
        let b = CharSet::range('g', 'z');
        let i = a.intersect(&b);
        assert_eq!(i, CharSet::range('g', 'm'));
        assert_eq!(a.subtract(&b), CharSet::range('a', 'f'));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&CharSet::single('z')));
    }

    #[test]
    fn from_iter_chars() {
        let s: CharSet = "cab".chars().collect();
        assert_eq!(s, CharSet::range('a', 'c'));
    }

    #[test]
    fn partition_produces_disjoint_cover() {
        let sets = vec![CharSet::range('a', 'm'), CharSet::range('g', 'z'), CharSet::single('q')];
        let blocks = disjoint_partition(&sets);
        // Blocks must be pairwise disjoint.
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                assert!(!blocks[i].intersects(&blocks[j]), "{} vs {}", blocks[i], blocks[j]);
            }
        }
        // Every input set must be exactly a union of blocks.
        for s in &sets {
            let mut covered = CharSet::empty();
            for b in &blocks {
                let i = s.intersect(b);
                if !i.is_empty() {
                    assert_eq!(&i, b, "block must be wholly inside or outside each set");
                    covered = covered.union(b);
                }
            }
            assert_eq!(&covered, s);
        }
    }

    #[test]
    fn display_is_readable() {
        let s = CharSet::range('a', 'z').union(&CharSet::single('_'));
        let d = s.to_string();
        assert!(d.contains("a-z"), "{d}");
    }

    #[test]
    fn prop_union_contains_both() {
        let mut rng = Rng64::seed_from_u64(0x9a01);
        for _ in 0..256 {
            let a = rng.gen_chars(24);
            let b = rng.gen_chars(24);
            let sa: CharSet = a.iter().copied().collect();
            let sb: CharSet = b.iter().copied().collect();
            let u = sa.union(&sb);
            for &c in a.iter().chain(b.iter()) {
                assert!(u.contains(c));
            }
        }
    }

    #[test]
    fn prop_complement_excludes() {
        let mut rng = Rng64::seed_from_u64(0x9a02);
        for _ in 0..256 {
            let a = rng.gen_chars(24);
            let probe = rng.gen_char();
            let s: CharSet = a.iter().copied().collect();
            assert_eq!(s.complement().contains(probe), !s.contains(probe));
        }
    }

    #[test]
    fn prop_intersect_is_and() {
        let mut rng = Rng64::seed_from_u64(0x9a03);
        for _ in 0..256 {
            let a = rng.gen_chars(24);
            let b = rng.gen_chars(24);
            let probe = rng.gen_char();
            let sa: CharSet = a.iter().copied().collect();
            let sb: CharSet = b.iter().copied().collect();
            assert_eq!(sa.intersect(&sb).contains(probe), sa.contains(probe) && sb.contains(probe));
        }
    }

    #[test]
    fn prop_partition_blocks_disjoint() {
        let mut rng = Rng64::seed_from_u64(0x9a04);
        for _ in 0..256 {
            let n_sets = rng.gen_range(0usize..5);
            let sets: Vec<CharSet> = (0..n_sets)
                .map(|_| {
                    let n_ranges = rng.gen_range(0usize..4);
                    CharSet::from_ranges((0..n_ranges).map(|_| {
                        let a = rng.gen_range(0u32..300);
                        let b = rng.gen_range(0u32..300);
                        (a.min(b), a.max(b))
                    }))
                })
                .collect();
            let blocks = disjoint_partition(&sets);
            for i in 0..blocks.len() {
                for j in (i + 1)..blocks.len() {
                    assert!(!blocks[i].intersects(&blocks[j]));
                }
            }
        }
    }
}
