//! Subset construction from the scanner NFA to a deterministic scanner DFA,
//! with alphabet compression.
//!
//! The classic algorithm (Aho/Sethi/Ullman) — the same algorithm the paper's
//! grammar analysis *modifies* for ATN configurations — here in its
//! unmodified character-level form for the lexer substrate.

use crate::charclass::{disjoint_partition, CharSet};
use crate::nfa::{Nfa, NfaStateId};
use std::collections::HashMap;

/// Identifier of a DFA state (index into [`ScannerDfa::states`]).
pub type DfaStateId = usize;

/// One deterministic scanner state.
#[derive(Debug, Clone)]
pub struct ScannerDfaState {
    /// Outgoing transitions `(symbol-class index, target)`.
    pub transitions: Vec<(usize, DfaStateId)>,
    /// Lowest-priority-number lexer rule accepted here, if any.
    pub accept: Option<usize>,
}

/// A deterministic scanner automaton produced by [`ScannerDfa::from_nfa`].
///
/// The input alphabet is compressed into disjoint character classes
/// (`classes`); `transitions` are indexed by class id.
#[derive(Debug, Clone)]
pub struct ScannerDfa {
    /// Disjoint character classes forming the compressed alphabet.
    pub classes: Vec<CharSet>,
    /// All DFA states; state `0` is the start state.
    pub states: Vec<ScannerDfaState>,
}

impl ScannerDfa {
    /// Builds the DFA equivalent of `nfa` via subset construction.
    pub fn from_nfa(nfa: &Nfa) -> Self {
        let classes = disjoint_partition(&nfa.edge_sets());
        let start = nfa.eps_closure(&[nfa.start]);
        let mut states: Vec<ScannerDfaState> = Vec::new();
        let mut index: HashMap<Vec<NfaStateId>, DfaStateId> = HashMap::new();
        let mut work: Vec<Vec<NfaStateId>> = Vec::new();

        let intern = |set: Vec<NfaStateId>,
                      states: &mut Vec<ScannerDfaState>,
                      index: &mut HashMap<Vec<NfaStateId>, DfaStateId>,
                      work: &mut Vec<Vec<NfaStateId>>|
         -> DfaStateId {
            if let Some(&id) = index.get(&set) {
                return id;
            }
            let accept = set.iter().filter_map(|&s| nfa.states[s].accept).min();
            let id = states.len();
            states.push(ScannerDfaState { transitions: Vec::new(), accept });
            index.insert(set.clone(), id);
            work.push(set);
            id
        };

        intern(start, &mut states, &mut index, &mut work);
        let mut cursor = 0;
        while cursor < work.len() {
            let current = work[cursor].clone();
            let from = index[&current];
            for (class_id, class) in classes.iter().enumerate() {
                let mut moved: Vec<NfaStateId> = Vec::new();
                for &s in &current {
                    if let Some((set, t)) = &nfa.states[s].edge {
                        // Classes are blocks of the partition of all edge
                        // sets, so a class is wholly inside or outside.
                        if set.intersects(class) {
                            moved.push(*t);
                        }
                    }
                }
                if moved.is_empty() {
                    continue;
                }
                let target_set = nfa.eps_closure(&moved);
                let to = intern(target_set, &mut states, &mut index, &mut work);
                states[from].transitions.push((class_id, to));
            }
            cursor += 1;
        }
        ScannerDfa { classes, states }
    }

    /// The class id matching character `c`, if any.
    pub fn class_of(&self, c: char) -> Option<usize> {
        self.classes.iter().position(|set| set.contains(c))
    }

    /// Follows one transition.
    pub fn step(&self, state: DfaStateId, c: char) -> Option<DfaStateId> {
        let class = self.class_of(c)?;
        self.states[state].transitions.iter().find(|&&(cl, _)| cl == class).map(|&(_, t)| t)
    }

    /// Longest-match simulation: returns `(byte length, rule)` of the
    /// longest non-empty prefix of `input` accepted by any rule.
    pub fn longest_match(&self, input: &str) -> Option<(usize, usize)> {
        let mut state = 0;
        let mut best: Option<(usize, usize)> = None;
        let mut consumed = 0;
        for c in input.chars() {
            match self.step(state, c) {
                Some(next) => {
                    state = next;
                    consumed += c.len_utf8();
                    if let Some(rule) = self.states[state].accept {
                        best = Some((consumed, rule));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Rx;
    use llstar_rng::Rng64;

    fn build(patterns: &[&str]) -> (Nfa, ScannerDfa) {
        let mut nfa = Nfa::new();
        for (i, p) in patterns.iter().enumerate() {
            nfa.add_rule(i, &Rx::parse(p).unwrap());
        }
        let dfa = ScannerDfa::from_nfa(&nfa);
        (nfa, dfa)
    }

    #[test]
    fn matches_like_nfa_on_keywords_vs_ident() {
        let (nfa, dfa) = build(&["'if'", "'int'", "[a-z]+"]);
        for input in ["if", "int", "i", "inx", "ifelse", "zebra", "9"] {
            assert_eq!(dfa.longest_match(input), nfa.longest_match(input), "input {input:?}");
        }
    }

    #[test]
    fn number_pattern() {
        let (_, dfa) = build(&["[0-9]+ ('.' [0-9]+)?"]);
        assert_eq!(dfa.longest_match("3.14x"), Some((4, 0)));
        assert_eq!(dfa.longest_match("3."), Some((1, 0)), "dangling dot is not consumed");
    }

    #[test]
    fn dfa_is_deterministic() {
        let (_, dfa) = build(&["[ab]+", "'ab'"]);
        for st in &dfa.states {
            let mut seen = std::collections::HashSet::new();
            for &(class, _) in &st.transitions {
                assert!(seen.insert(class), "duplicate transition on class {class}");
            }
        }
    }

    #[test]
    fn string_literal_rule() {
        let (_, dfa) = build(&[r#"'"' (~["\\] | '\\' .)* '"'"#]);
        assert_eq!(dfa.longest_match(r#""hi there" rest"#), Some((10, 0)));
        assert_eq!(dfa.longest_match(r#""esc\"aped" rest"#), Some((11, 0)));
        assert_eq!(dfa.longest_match(r#""unterminated"#), None);
    }

    /// The DFA must agree with the NFA reference simulation on random
    /// inputs for a representative rule set.
    #[test]
    fn prop_dfa_equals_nfa() {
        let (nfa, dfa) = build(&["'a'", "[a-c]+", "[0-2]+ ('.' [0-2]+)?", "'.'"]);
        let mut rng = Rng64::seed_from_u64(0xd5a1);
        for _ in 0..256 {
            let input = rng.gen_string_from("abc012.", 12);
            assert_eq!(dfa.longest_match(&input), nfa.longest_match(&input), "input {input:?}");
        }
    }

    /// Random pattern fuzz: any parseable pattern must yield agreeing
    /// NFA/DFA behaviour.
    #[test]
    fn prop_random_patterns() {
        let mut rng = Rng64::seed_from_u64(0xd5a2);
        for _ in 0..256 {
            let len = rng.gen_range(1usize..=10);
            let seed_pat = rng.gen_string_from("abc|()*+?", len);
            if seed_pat.is_empty() {
                continue;
            }
            let input = rng.gen_string_from("abc", 8);
            if let Ok(raw) = Rx::parse(&seed_pat) {
                // Bare letters parse as fragment references; resolve each
                // one-letter fragment to the corresponding literal.
                let rx = raw
                    .resolve_fragments(&|name| Some(Rx::literal(name)))
                    .expect("every name resolves to its literal");
                if !rx.is_nullable() {
                    let mut nfa = Nfa::new();
                    nfa.add_rule(0, &rx);
                    let dfa = ScannerDfa::from_nfa(&nfa);
                    assert_eq!(
                        dfa.longest_match(&input),
                        nfa.longest_match(&input),
                        "pattern {seed_pat:?}, input {input:?}"
                    );
                }
            }
        }
    }
}
