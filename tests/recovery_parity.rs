//! Interpreted/generated recovery parity: for the same corrupted input,
//! both engines must repair identically — same trees (s-expressions,
//! error nodes included) and **byte-identical diagnostic JSONL**.

use llstar::codegen::generate;
use llstar::runtime::{diagnostics_jsonl, parse_text_recovering, Diagnostic};
use std::path::PathBuf;
use std::process::Command;

mod common;
use common::{compile_generated, load_grammar_source};

const STMTS: &str = r#"
grammar Stmts;
s : stat+ ;
stat : ID '=' expr ';' | '!' ID ';' ;
expr : INT ;
ID : [a-z]+ ;
INT : [0-9]+ ;
PLUS : '+' ;
WS : [ ]+ -> skip ;
"#;

/// A driver that parses with recovery and prints the s-expression, the
/// diagnostic JSONL, and the error-node count, so every recovery-visible
/// artifact is compared.
const DRIVER: &str = r#"
fn main() {
    let input = std::env::args().nth(1).expect("input argument");
    match parse_recovering(&input, 100) {
        Ok((tree, diags)) => {
            println!("{}", tree.to_sexpr(&input));
            println!("{}", tree.error_node_count());
            print!("{}", diagnostics_jsonl(&diags));
        }
        Err(e) => {
            println!("ERROR {e}");
            std::process::exit(1);
        }
    }
}
"#;

fn build_generated(name: &str, grammar_src: &str) -> PathBuf {
    let (g, a) = load_grammar_source(grammar_src);
    let code = generate(&g, &a).expect("generation succeeds");
    compile_generated(&format!("recovery_{name}"), &code, DRIVER)
}

#[test]
fn generated_recovery_diagnostics_are_byte_identical() {
    let (g, a) = load_grammar_source(STMTS);
    let exe = build_generated("stmts", STMTS);

    // One input per repair shape: clean, missing token (insertion),
    // extraneous token (deletion), out-of-follow junk (sync-and-return),
    // cascades, multiple independent errors, a failed prediction
    // (no-viable), and trailing junk after the start rule.
    let inputs = [
        "a = 1 ; b = 2 ;",
        "a 1 ; b = 2 ;",
        "a = = 1 ;",
        "a = + + 1 ; c = 2 ;",
        "a = b ; c = 2 ;",
        "a 1 ; b = ; c = + 3 ; d = 4 ;",
        "= 1 ; ! x ;",
        "a = 1 ; +",
    ];
    for input in inputs {
        let (tree, errors, _) =
            parse_text_recovering(&g, &a, input, "s", llstar::runtime::NopHooks, 100)
                .unwrap_or_else(|e| panic!("interpreter failed on {input:?}: {e}"));
        let jsonl = diagnostics_jsonl(&Diagnostic::from_errors(&g, &errors));
        let expected =
            format!("{}\n{}\n{}", tree.to_sexpr(&g, input), tree.error_node_count(), jsonl);

        let out = Command::new(&exe).arg(input).output().expect("generated parser runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "generated parser aborted on {input:?}: {stdout}");
        assert_eq!(stdout, expected, "engines diverged on {input:?}");
    }
}

#[test]
fn generated_recovery_respects_max_errors_cap() {
    let (g, a) = load_grammar_source(STMTS);
    let code = generate(&g, &a).expect("generation succeeds");

    let driver = r#"
fn main() {
    let input = std::env::args().nth(1).expect("input argument");
    match parse_recovering(&input, 1) {
        Ok((_, diags)) => println!("OK {}", diags.len()),
        Err(e) => {
            println!("ERROR {e}");
            std::process::exit(1);
        }
    }
}
"#;
    let dir = std::env::temp_dir().join(format!("llstar_recovery_cap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src_path = dir.join("parser_main.rs");
    std::fs::write(&src_path, format!("{code}\n{driver}\n")).expect("write");
    let exe = dir.join("parser_main");
    let out = Command::new("rustc")
        .args(["--edition", "2021", "-O", "-o"])
        .arg(&exe)
        .arg(&src_path)
        .output()
        .expect("rustc runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Two corruption sites, cap of one: like the interpreter, the
    // generated parser aborts at the second.
    let out = Command::new(&exe).arg("a 1 ; b = ; c = 3 ;").output().expect("runs");
    assert!(!out.status.success(), "cap must abort the parse");
    // A single error fits under the cap.
    let out = Command::new(&exe).arg("a 1 ; b = 2 ;").output().expect("runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert_eq!(stdout.trim(), "OK 1");
}

/// PEG-mode grammars gate every non-last alternative with a syntactic
/// predicate in the *rule body* (not just in prediction). When a gate
/// fails outside speculation, both engines must repair it identically:
/// report a `predicate` diagnostic, consume at least one token, resync,
/// and return from the rule.
const PEGGY: &str = r#"
grammar Peggy;
options { backtrack = true; }
s : item+ ;
item : A B C SEMI | X B SEMI ;
A : 'a' ;
B : 'b' ;
C : 'c' ;
X : 'x' ;
SEMI : ';' ;
WS : [ ]+ -> skip ;
"#;

#[test]
fn generated_gate_recovery_diagnostics_are_byte_identical() {
    let (g, a) = load_grammar_source(PEGGY);
    let exe = build_generated("peggy", PEGGY);

    let inputs = ["a b c ; x b ;", "a b x ; x b ;", "a b c ; a b ;", "a b ; x ;", "a a a ;"];
    let mut predicate_diags = 0usize;
    for input in inputs {
        let (tree, errors, _) =
            parse_text_recovering(&g, &a, input, "s", llstar::runtime::NopHooks, 100)
                .unwrap_or_else(|e| panic!("interpreter failed on {input:?}: {e}"));
        let jsonl = diagnostics_jsonl(&Diagnostic::from_errors(&g, &errors));
        predicate_diags += jsonl.matches("\"kind\":\"predicate\"").count();
        let expected =
            format!("{}\n{}\n{}", tree.to_sexpr(&g, input), tree.error_node_count(), jsonl);

        let out = Command::new(&exe).arg(input).output().expect("generated parser runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "generated parser aborted on {input:?}: {stdout}");
        assert_eq!(stdout, expected, "engines diverged on {input:?}");
    }
    assert!(predicate_diags > 0, "no input exercised the body-gate (predicate) recovery path");
}
