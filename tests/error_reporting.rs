//! Error-reporting behaviour from Section 4.4: errors point at the token
//! that killed the decision or match — for arbitrary-lookahead decisions,
//! the specific lookahead symbol; for backtracking, the deepest symbol a
//! failed speculative parse reached.

use llstar::core::analyze;
use llstar::grammar::{apply_peg_mode, parse_grammar};
use llstar::runtime::{parse_text, NopHooks, ParseErrorKind, Parser, TokenStream};
use llstar_suite as suite;

#[test]
fn arbitrary_lookahead_error_points_at_offending_symbol() {
    // Section 4.4's example: A → a+b | a+c on "aaaaad" must report at d.
    let g = apply_peg_mode(
        parse_grammar("grammar E; s : A+ B | A+ C ; A:'a'; B:'b'; C:'c'; D:'d';").unwrap(),
    );
    let a = analyze(&g);
    let scanner = g.lexer.build().unwrap();
    let toks = scanner.tokenize("aaaaad").unwrap();
    let mut p = Parser::new(&g, &a, TokenStream::new(toks), NopHooks);
    let err = p.parse_to_eof("s").unwrap_err();
    assert_eq!(err.token.col, 6, "{err}");
    assert!(matches!(err.kind, ParseErrorKind::NoViableAlternative { .. }), "{err}");
}

#[test]
fn mismatch_error_names_the_expected_token() {
    let g =
        parse_grammar("grammar M; s : ID '=' INT ';' ; ID:[a-z]+; INT:[0-9]+; WS:[ ]+ -> skip;")
            .unwrap();
    let a = analyze(&g);
    let err = parse_text(&g, &a, "x = 1", "s", NopHooks).unwrap_err();
    assert!(err.contains("';'"), "{err}");
    let err = parse_text(&g, &a, "x 1 ;", "s", NopHooks).unwrap_err();
    assert!(err.contains("'='"), "{err}");
    assert!(err.contains("1:3"), "position of the bad token: {err}");
}

#[test]
fn backtracking_reports_deepest_speculative_failure() {
    // Both alternatives speculate deep into the input; the winning error
    // is the one that got furthest (the `'...' '!'` attempt dies at the
    // very end).
    let g = apply_peg_mode(
        parse_grammar(
            r#"
            grammar D;
            options { backtrack = true; }
            s : item* '!' EOF | item* '?' EOF ;
            item : '(' item* ')' | ID ;
            ID : [a-z]+ ;
            WS : [ ]+ -> skip ;
            "#,
        )
        .unwrap(),
    );
    let a = analyze(&g);
    let input = "a ( b c ) d %";
    // '%' fails to lex; use a lexable but invalid tail instead:
    let _ = input;
    let input = "a ( b c ) d d d";
    let err = parse_text(&g, &a, input, "s", NopHooks).unwrap_err();
    // The deepest failure is at end of input (neither '!' nor '?' found),
    // column of the last token or beyond — not at the first token.
    assert!(!err.contains("1:1:"), "error must not blame the first token: {err}");
}

#[test]
fn suite_grammars_report_positions_on_corrupted_inputs() {
    for entry in suite::all() {
        let g = entry.load();
        let a = analyze(&g);
        let input = (entry.generate)(30, 3);
        let scanner = g.lexer.build().unwrap();
        // Corrupt the input by truncating at 80%: parsing must fail with
        // a positioned error (never panic), or succeed if the truncation
        // landed on a statement boundary.
        let cut = input.len() * 4 / 5;
        let cut = (0..=cut).rev().find(|&i| input.is_char_boundary(i)).unwrap_or(0);
        let truncated = &input[..cut];
        if scanner.tokenize(truncated).is_err() {
            continue; // cut mid-token; lexer reports instead
        }
        match parse_text(&g, &a, truncated, entry.start_rule, NopHooks) {
            Ok(_) => {}
            Err(e) => {
                assert!(e.starts_with("line "), "{}: error must carry a position: {e}", entry.name);
            }
        }
    }
}
