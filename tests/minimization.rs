//! DFA minimization ablation: minimized DFAs must predict identically to
//! the raw subset-construction output, while never being larger.

use llstar::core::{analyze_with, AnalysisOptions};
use llstar::runtime::{parse_text, NopHooks};
use llstar_suite as suite;

#[test]
fn minimization_never_grows_and_usually_shrinks() {
    let mut total_raw = 0usize;
    let mut total_min = 0usize;
    for entry in suite::all() {
        let g = entry.load();
        let raw = analyze_with(&g, &AnalysisOptions { minimize: false, ..Default::default() });
        let min = analyze_with(&g, &AnalysisOptions { minimize: true, ..Default::default() });
        for (r, m) in raw.decisions.iter().zip(&min.decisions) {
            assert!(
                m.dfa.states.len() <= r.dfa.states.len(),
                "{}: decision {:?} grew",
                entry.name,
                r.decision
            );
            assert_eq!(
                r.dfa.classify(),
                m.dfa.classify(),
                "{}: classification must be invariant",
                entry.name
            );
        }
        total_raw += raw.decisions.iter().map(|d| d.dfa.states.len()).sum::<usize>();
        total_min += min.decisions.iter().map(|d| d.dfa.states.len()).sum::<usize>();
    }
    assert!(total_min < total_raw, "minimization should save states: {total_min} vs {total_raw}");
}

#[test]
fn minimized_and_raw_dfas_parse_identically() {
    for entry in [suite::by_name("Java").unwrap(), suite::by_name("SQL").unwrap()] {
        let g = entry.load();
        let raw = analyze_with(&g, &AnalysisOptions { minimize: false, ..Default::default() });
        let min = analyze_with(&g, &AnalysisOptions { minimize: true, ..Default::default() });
        for seed in 0..8u64 {
            let input = (entry.generate)(30, seed);
            let a = parse_text(&g, &raw, &input, entry.start_rule, NopHooks);
            let b = parse_text(&g, &min, &input, entry.start_rule, NopHooks);
            match (a, b) {
                (Ok((ta, _)), Ok((tb, _))) => assert_eq!(ta, tb, "{}: trees differ", entry.name),
                (ra, rb) => panic!(
                    "{}: outcomes differ: {:?} vs {:?}",
                    entry.name,
                    ra.map(|_| ()),
                    rb.map(|_| ())
                ),
            }
        }
    }
}

#[test]
fn serialized_analysis_parses_identically() {
    use llstar::core::{deserialize_analysis, serialize_analysis};
    for name in ["Java", "SQL"] {
        let entry = suite::by_name(name).unwrap();
        let g = entry.load();
        let original = llstar::core::analyze(&g);
        let text = serialize_analysis(&g, &original);
        let loaded = deserialize_analysis(&g, &text).unwrap();
        for seed in 0..4u64 {
            let input = (entry.generate)(30, seed);
            let a = parse_text(&g, &original, &input, entry.start_rule, NopHooks);
            let b = parse_text(&g, &loaded, &input, entry.start_rule, NopHooks);
            match (a, b) {
                (Ok((ta, _)), Ok((tb, _))) => assert_eq!(ta, tb, "{name}: trees differ"),
                (ra, rb) => panic!("{name}: {:?} vs {:?}", ra.map(|_| ()), rb.map(|_| ())),
            }
        }
    }
}
