//! Compiled-table prediction parity: routing the interpreter through the
//! dense/row-displaced [`CompiledTables`] dispatch must be **byte
//! identical** to the linear `DfaState::edges` scan — same parse trees,
//! same `TraceEvent` JSONL stream (DFA paths included), same coverage
//! JSON — over every suite grammar and its full corpus. Plus property
//! tests: randomly generated DFAs round-trip through the lowering (the
//! compiled tables agree with the linear scan on accept/default/pred
//! behavior over random token strings, for both representations).
//!
//! [`CompiledTables`]: llstar::core::CompiledTables

use llstar::core::{CompiledDfa, TokenClasses, DENSE_CELL_BUDGET, NO_TARGET};
use llstar::runtime::{NopHooks, Parser, TokenStream};
use llstar_core::dfa::{DfaState, LookaheadDfa};
use llstar_core::{DecisionId, PredSource};
use llstar_grammar::SynPredId;
use llstar_lexer::TokenType;
use llstar_rng::Rng64;

mod common;
use common::{input_files, interp_corpus, load_grammar, read_inputs, SUITE_STEMS};

#[test]
fn compiled_dispatch_is_byte_identical_over_the_corpus() {
    for stem in SUITE_STEMS {
        let (g, a) = load_grammar(stem);
        assert!(a.tables.enabled(), "{stem}: suite grammars must lower");
        let inputs = read_inputs(&input_files(stem));
        let c = interp_corpus(&g, &a, &inputs, true);
        let l = interp_corpus(&g, &a, &inputs, false);
        assert_eq!(c.trees, l.trees, "{stem}: parse trees diverged");
        assert_eq!(c.trace, l.trace, "{stem}: trace streams diverged");
        assert_eq!(c.coverage, l.coverage, "{stem}: coverage JSON diverged");
        assert!(!c.trace.is_empty() && c.trace.contains("predict-stop"));
    }
}

#[test]
fn error_positions_match_across_dispatch_modes() {
    // No-viable paths exercise the pred/default fallback ordering; the
    // reported errors must match exactly too.
    for (stem, junk) in
        [("calculator", "1 + + 2"), ("json", "{\"a\": }"), ("config", "[section\nkey =")]
    {
        let (g, a) = load_grammar(stem);
        let start = g.start_rule().name.clone();
        let scanner = g.lexer.build().expect("lexer builds");
        let Ok(tokens) = scanner.tokenize(junk) else { continue };
        let mut errors = Vec::new();
        for compiled in [true, false] {
            let mut parser = Parser::new(&g, &a, TokenStream::new(tokens.clone()), NopHooks);
            parser.set_compiled_dispatch(compiled);
            let err = parser.parse_to_eof(&start).expect_err("junk input must fail");
            errors.push(format!("{err:?}"));
        }
        assert_eq!(errors[0], errors[1], "{stem}: errors diverged on {junk:?}");
    }
}

// ---------------------------------------------------------------------
// Random-DFA lowering round-trip properties
// ---------------------------------------------------------------------

/// A random, structurally valid lookahead DFA: every state gets random
/// token edges (deduplicated per token), and terminal shapes — accept,
/// predicates, default — are sprinkled in.
fn random_dfa(rng: &mut Rng64, vocab: usize) -> LookaheadDfa {
    let num_states = rng.gen_range(1usize..=24);
    let mut dfa = LookaheadDfa::new(DecisionId(0));
    dfa.states.resize_with(num_states, DfaState::default);
    for s in 0..num_states {
        if rng.gen_bool(0.25) {
            dfa.states[s].accept = Some(rng.gen_range(1u16..=4));
            continue; // accept states need no edges
        }
        let fanout = rng.gen_range(0usize..=vocab.min(6));
        for _ in 0..fanout {
            let tok = TokenType(rng.gen_range(0u32..vocab as u32));
            let target = rng.gen_range(0usize..num_states);
            if dfa.states[s].edges.iter().all(|&(t, _)| t != tok) {
                dfa.states[s].edges.push((tok, target));
            }
        }
        if rng.gen_bool(0.2) {
            let n_preds = rng.gen_range(1usize..=2);
            for _ in 0..n_preds {
                let alt = rng.gen_range(1u16..=4);
                let sp = SynPredId(rng.gen_range(0u32..3));
                let pred =
                    if rng.gen_bool(0.5) { PredSource::Syn(sp) } else { PredSource::NotSyn(sp) };
                dfa.states[s].preds.push((pred, alt));
            }
        }
        if rng.gen_bool(0.3) {
            dfa.states[s].default_alt = Some(rng.gen_range(1u16..=4));
        }
    }
    dfa
}

/// Asserts `compiled` agrees with the linear scan of `dfa` at every
/// state: accept/default/pred side tables, and the transition function
/// over the whole vocabulary.
fn assert_lowering_matches(dfa: &LookaheadDfa, classes: &TokenClasses, compiled: &CompiledDfa) {
    for (s, st) in dfa.states.iter().enumerate() {
        assert_eq!(compiled.accept_alt(s), st.accept, "accept of s{s}");
        assert_eq!(compiled.default_of(s), st.default_alt, "default of s{s}");
        assert_eq!(compiled.preds_of(s), st.preds.as_slice(), "preds of s{s}");
        for t in 0..classes.map().len() as u32 {
            let token = TokenType(t);
            let linear = st.target(token).map(|x| x as u32).unwrap_or(NO_TARGET);
            let lowered = compiled.next(s, classes.class_of(token));
            assert_eq!(lowered, linear, "transition s{s} --t{t}-->");
        }
    }
}

/// Walks a random token string through the DFA with both dispatches and
/// asserts the state sequences and terminal outcomes agree.
fn walk_both(dfa: &LookaheadDfa, classes: &TokenClasses, compiled: &CompiledDfa, rng: &mut Rng64) {
    let vocab = classes.map().len() as u32;
    let mut cur = 0usize;
    for _ in 0..64 {
        let tok = TokenType(rng.gen_range(0u32..vocab));
        let linear = dfa.states[cur].target(tok);
        let lowered = match compiled.next(cur, classes.class_of(tok)) {
            NO_TARGET => None,
            t => Some(t as usize),
        };
        assert_eq!(lowered, linear, "walk diverged at s{cur} on t{}", tok.0);
        match linear {
            Some(next) if compiled.accept_alt(next).is_none() => cur = next,
            Some(next) => {
                assert_eq!(compiled.accept_alt(next), dfa.states[next].accept);
                cur = 0; // restart at accept, like repeated predictions
            }
            None => cur = 0, // restart on a dead token
        }
    }
}

#[test]
fn random_dfas_round_trip_through_lowering() {
    let mut rng = Rng64::seed_from_u64(0xD15BA7C4);
    for round in 0..200 {
        let vocab = rng.gen_range(2usize..=40);
        let dfa = random_dfa(&mut rng, vocab);
        let classes = TokenClasses::compute(vocab, std::iter::once(&dfa))
            .unwrap_or_else(|| panic!("round {round}: partition overflow"));
        assert!(classes.num_classes() <= vocab.max(1));
        // Both representations, not just the auto-chosen one.
        let dense = CompiledDfa::lower_dense(&dfa, &classes);
        assert!(!dense.is_row_displaced());
        assert_lowering_matches(&dfa, &classes, &dense);
        let displaced = CompiledDfa::lower_row_displaced(&dfa, &classes);
        assert!(displaced.is_row_displaced());
        assert_lowering_matches(&dfa, &classes, &displaced);
        // The auto choice follows the size policy — dense within the
        // cell budget, displacement past it only when it saves at least
        // a quarter of the dense cells — and stays correct.
        let auto = CompiledDfa::lower(&dfa, &classes);
        assert_eq!(
            auto.is_row_displaced(),
            dense.table_cells() > DENSE_CELL_BUDGET
                && displaced.table_cells() * 4 <= dense.table_cells() * 3,
            "representation choice off policy"
        );
        walk_both(&dfa, &classes, &auto, &mut rng);
    }
}

#[test]
fn lowering_is_deterministic() {
    let mut rng = Rng64::seed_from_u64(42);
    let dfa = random_dfa(&mut rng, 16);
    let classes = TokenClasses::compute(16, std::iter::once(&dfa)).expect("partition fits");
    let a = CompiledDfa::lower(&dfa, &classes);
    let b = CompiledDfa::lower(&dfa, &classes);
    assert_eq!(a.table, b.table);
    assert_eq!(a.accept, b.accept);
    assert_eq!(a.default_alt, b.default_alt);
    assert_eq!(a.preds, b.preds);
    assert_eq!(TokenClasses::compute(16, std::iter::once(&dfa)).expect("partition fits"), classes);
}
