//! The gauntlet differential oracle: every `(grammar, input)` cell of
//! the generated corpora runs through the full engine matrix —
//! interpreter with linear and compiled dispatch, a re-entrant
//! [`ParseSession`] over the whole corpus, the coverage-instrumented
//! generated parser, and the memoized packrat baseline — and every
//! engine must agree: byte-identical parse trees (s-expressions),
//! byte-identical trace streams (FNV-fingerprinted at MB scale),
//! byte-identical coverage JSON, and matching accept verdicts.
//!
//! Corpus size is picked by `LLSTAR_GAUNTLET_TIER` (`smoke` ≈ 10 KB,
//! `1mb` — the default acceptance tier, `10mb` for nightly stress); the
//! corpora are deterministic functions of `(grammar, tier, ORACLE_SEED)`
//! and are never checked in.
//!
//! [`ParseSession`]: llstar::runtime::ParseSession

use llstar::codegen::{generate_with, CodegenOptions};
use llstar::core::GrammarAnalysis;
use llstar::grammar::Grammar;
use llstar::packrat::PackratParser;
use llstar::runtime::{NopHooks, ParseSession};
use llstar_suite::gauntlet::{by_name, corpus, GauntletEntry, Tier};
use std::path::PathBuf;
use std::process::Command;

mod common;
use common::{compile_generated, fingerprint, load_grammar_source, oracle_interp_run};

/// Fixed corpus seed: the oracle must be reproducible run to run.
const ORACLE_SEED: u64 = 0x11_57a2_2011;

/// Compiles the coverage-instrumented generated parser with a driver
/// that parses every argv path, prints one FNV tree fingerprint per
/// input, then the merged coverage JSON. Fingerprints (not the full
/// s-expressions) cross the pipe: at the 10 MB tier a rendered tree is
/// several times the input size.
fn build_generated(entry: &GauntletEntry, g: &Grammar, a: &GrammarAnalysis) -> PathBuf {
    let code = generate_with(g, a, CodegenOptions { coverage: true, ..Default::default() })
        .expect("generation succeeds");
    let start = entry.start_rule;
    let driver = format!(
        r#"
fn fnv(bytes: &[u8]) -> String {{
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {{
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }}
    format!("fnv={{hash:016x}}:len={{}}", bytes.len())
}}

fn main() {{
    let mut cov = Coverage::new();
    for path in std::env::args().skip(1) {{
        let input = std::fs::read_to_string(&path).expect("corpus file readable");
        let tokens = tokenize(&input).expect("lexes");
        let mut hooks = NopHooks;
        let mut parser = Parser::new(tokens, &mut hooks);
        let tree = parser.parse_{start}().unwrap_or_else(|e| panic!("{{path}}: {{e}}"));
        assert!(parser.la(1) == 0, "trailing input in {{path}}");
        println!("{{}}", fnv(tree.to_sexpr(&input).as_bytes()));
        cov.merge(&parser.cov);
        cov.files += 1;
    }}
    println!("{{}}", cov.to_json());
}}
"#
    );
    compile_generated(&format!("gauntlet_{}", entry.name), &code, &driver)
}

/// Runs the full engine matrix for one gauntlet grammar at the
/// environment-selected tier.
fn oracle(name: &str) {
    let entry = by_name(name).unwrap_or_else(|| panic!("unknown gauntlet grammar {name}"));
    let tier = Tier::from_env();
    let inputs = corpus(&entry, tier, ORACLE_SEED);
    let (g, a) = load_grammar_source(entry.source);
    let start = entry.start_rule;
    // At the smoke tier compare full s-expressions (better failure
    // messages); above it, FNV fingerprints.
    let full = tier == Tier::Smoke;

    // Interpreter, linear vs compiled dispatch: trees, trace stream, and
    // coverage fold must all be byte-identical.
    let linear = oracle_interp_run(&g, &a, start, &inputs, false, full);
    let compiled = oracle_interp_run(&g, &a, start, &inputs, true, full);
    for (i, (label, _)) in inputs.iter().enumerate() {
        assert_eq!(
            linear.trees[i], compiled.trees[i],
            "{label}: linear vs compiled dispatch built different trees"
        );
    }
    assert_eq!(
        linear.trace_fp,
        compiled.trace_fp,
        "{name}/{}: dispatch modes emitted different trace streams",
        tier.label()
    );
    assert_eq!(
        linear.coverage,
        compiled.coverage,
        "{name}/{}: dispatch modes folded different coverage maps",
        tier.label()
    );

    // Re-entrant session: one scanner + parser recycled across the whole
    // corpus must reproduce the fresh-parser trees exactly.
    let mut session = ParseSession::new(&g, &a, start, NopHooks).expect("session builds");
    for (i, (label, text)) in inputs.iter().enumerate() {
        let tree = session.parse_to_eof(text).unwrap_or_else(|e| panic!("{label}: session: {e}"));
        let sexpr = tree.to_sexpr(&g, text);
        let got = if full { sexpr } else { fingerprint(sexpr.as_bytes()) };
        assert_eq!(got, linear.trees[i], "{label}: re-entrant session tree diverged");
    }
    assert_eq!(session.parses() as usize, inputs.len());

    // Generated parser: tree fingerprints per input plus the merged
    // coverage JSON, both against the interpreter.
    let exe = build_generated(&entry, &g, &a);
    let dir = std::env::temp_dir().join(format!(
        "llstar_gauntlet_corpus_{}_{}",
        entry.name,
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("corpus temp dir");
    let files: Vec<PathBuf> = inputs
        .iter()
        .enumerate()
        .map(|(i, (_, text))| {
            let path = dir.join(format!("input-{i:02}.txt"));
            std::fs::write(&path, text).expect("write corpus file");
            path
        })
        .collect();
    let out = Command::new(&exe).args(&files).output().expect("generated parser runs");
    assert!(
        out.status.success(),
        "{name}: generated parser aborted:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 output");
    let mut lines = stdout.lines();
    for (i, (label, _)) in inputs.iter().enumerate() {
        let got = lines.next().unwrap_or_else(|| panic!("{label}: missing generated output"));
        let want =
            if full { fingerprint(linear.trees[i].as_bytes()) } else { linear.trees[i].clone() };
        assert_eq!(got, want, "{label}: generated parser tree diverged from interpreter");
    }
    let gen_cov = lines.next().expect("generated coverage JSON");
    assert_eq!(
        gen_cov,
        linear.coverage,
        "{name}/{}: generated coverage diverged from interpreter fold",
        tier.label()
    );

    // Packrat baseline (memoized): acceptance must agree — every corpus
    // input is in the language, so the recognizer must accept it. (The
    // packrat engine builds no trees; tree equality is out of scope.)
    let scanner = g.lexer.build().expect("lexer builds");
    for (label, text) in &inputs {
        let tokens = scanner.tokenize(text).expect("lexes");
        let mut packrat = PackratParser::new(&g, tokens);
        packrat.set_memoize(true);
        packrat
            .recognize(start)
            .unwrap_or_else(|e| panic!("{label}: packrat rejected a corpus input: {e}"));
    }
}

#[test]
fn java8_engine_matrix_agrees() {
    oracle("java8");
}

#[test]
fn sql_engine_matrix_agrees() {
    oracle("sql");
}

#[test]
fn json_engine_matrix_agrees() {
    oracle("json");
}
