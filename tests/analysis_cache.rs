//! The persistent analysis cache, proven end to end:
//!
//! * a hit *skips subset construction entirely* (`from_cache` is set and
//!   the per-decision construction metrics are replayed from the file,
//!   not recounted),
//! * a grammar edit changes the fingerprint and forces re-analysis —
//!   including an edit that touches *only* the `options { … }` block,
//!   since analysis limits (`max_k`, `m`) derive from it,
//! * the same cache file read under different *result-affecting* analysis
//!   options is a `StaleOptions` miss,
//! * truncated or corrupted cache files are rejected with a
//!   line-numbered [`SerializeError`] — never a panic, and never a
//!   silently wrong analysis.
//!
//! All outcomes are observed through per-run state ([`CacheStatus`],
//! `from_cache`, [`DecisionMetrics`]) — no process-global counters, so
//! the tests are free to run in parallel.

use llstar::core::{
    analyze_cached, analyze_cached_metered, analyze_cached_with, analyze_with, cache_path,
    deserialize_analysis, serialize_analysis, AnalysisOptions, CacheMetrics, CacheMiss,
    CacheStatus,
};
use llstar::grammar::{apply_peg_mode, parse_grammar, Grammar};
use std::path::PathBuf;

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("llstar_cachetest_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn grammar(body: &str) -> Grammar {
    apply_peg_mode(parse_grammar(body).expect("test grammar parses"))
}

const BASE: &str = "grammar Cached;
    s : A B C | A B D | A* X ;
    t : X Y | X Z ;
    A:'a'; B:'b'; C:'c'; D:'d'; X:'x'; Y:'y'; Z:'z';
    WS : [ ]+ -> skip ;";

#[test]
fn hit_skips_subset_construction_and_replays_metrics() {
    let g = grammar(BASE);
    let path = cache_path(&workdir("hit"), &g);
    let _ = std::fs::remove_file(&path);

    let (fresh, status) = analyze_cached(&g, &path).expect("first analyze");
    assert_eq!(status, CacheStatus::Miss(CacheMiss::Absent));
    assert!(!fresh.from_cache, "a miss must run subset construction");
    let fresh_total = fresh.total_metrics();
    assert!(fresh_total.dfa_builds > 0 && fresh_total.closure_calls > 0, "{fresh_total:?}");

    let (loaded, status) = analyze_cached(&g, &path).expect("second analyze");
    assert!(status.is_hit(), "{status}");
    assert!(loaded.from_cache, "a cache hit must not build a single DFA");
    assert_eq!(
        serialize_analysis(&g, &fresh),
        serialize_analysis(&g, &loaded),
        "loaded analysis differs from the one that was cached"
    );
    // The original construction cost is reported even though no
    // construction ran: the metrics travelled through the file.
    assert_eq!(loaded.total_metrics(), fresh_total);
    for (da, db) in fresh.decisions.iter().zip(&loaded.decisions) {
        assert_eq!(da.metrics, db.metrics, "decision d{} metrics", da.decision.0);
    }
}

#[test]
fn grammar_edit_changes_fingerprint_and_forces_reanalysis() {
    let g1 = grammar(BASE);
    let dir = workdir("edit");
    let path = cache_path(&dir, &g1);
    let _ = std::fs::remove_file(&path);
    analyze_cached(&g1, &path).expect("prime the cache");

    // Same grammar name — same cache slot — but an edited body.
    let g2 = grammar(&BASE.replace("t : X Y | X Z ;", "t : X Y | Y Z ;"));
    assert_eq!(cache_path(&dir, &g2), path, "edit must target the same slot");

    let (a, status) = analyze_cached(&g2, &path).expect("re-analyze after edit");
    assert_eq!(status, CacheStatus::Miss(CacheMiss::StaleGrammar));
    assert!(!a.from_cache, "a stale cache must be recomputed");

    // The rewrite re-keys the slot: the edited grammar now hits, and the
    // *original* grammar is the one that misses.
    let (_, status) = analyze_cached(&g2, &path).expect("hit after rewrite");
    assert!(status.is_hit(), "{status}");
    let (_, status) = analyze_cached(&g1, &path).expect("original now stale");
    assert_eq!(status, CacheStatus::Miss(CacheMiss::StaleGrammar));
}

#[test]
fn options_block_edit_forces_reanalysis() {
    let g1 = grammar(BASE);
    let dir = workdir("opts");
    let path = cache_path(&dir, &g1);
    let _ = std::fs::remove_file(&path);
    analyze_cached(&g1, &path).expect("prime the cache");

    // Identical rules — only the options block changes. `k = 1` bounds
    // the lookahead, which changes the DFAs and the ambiguity warnings,
    // so serving the unbounded-k cache would silently alter results.
    // The edit changes the grammar text, so this is a grammar-level miss.
    let g2 = grammar(&BASE.replace("grammar Cached;", "grammar Cached; options { k = 1; }"));
    assert_eq!(cache_path(&dir, &g2), path, "options edit must target the same slot");

    let (a, status) = analyze_cached(&g2, &path).expect("re-analyze after options edit");
    assert_eq!(status, CacheStatus::Miss(CacheMiss::StaleGrammar));
    assert!(!a.from_cache, "an options edit must force re-analysis");
    assert_eq!(a.options.max_k, Some(1));

    let (b, status) = analyze_cached(&g2, &path).expect("hit with matching options");
    assert!(status.is_hit(), "{status}");
    assert_eq!(b.options.max_k, Some(1));
}

#[test]
fn option_override_without_grammar_edit_is_a_stale_options_miss() {
    let g = grammar(BASE);
    let dir = workdir("optover");
    let path = cache_path(&dir, &g);
    let _ = std::fs::remove_file(&path);

    let mut metrics = CacheMetrics::default();
    let defaults = AnalysisOptions::from_grammar(&g);
    analyze_cached_metered(&g, &path, &defaults, &mut metrics).expect("prime the cache");

    // Same grammar text, different result-affecting analysis options:
    // the fingerprint matches but the recorded options do not.
    let mut bounded = defaults.clone();
    bounded.max_k = Some(1);
    let (a, status) =
        analyze_cached_metered(&g, &path, &bounded, &mut metrics).expect("bounded re-analysis");
    assert_eq!(status, CacheStatus::Miss(CacheMiss::StaleOptions));
    assert!(!a.from_cache);

    // The rewrite re-keys the slot to the bounded options.
    let (_, status) =
        analyze_cached_metered(&g, &path, &bounded, &mut metrics).expect("bounded hit");
    assert!(status.is_hit(), "{status}");

    assert_eq!(metrics.lookups(), 3);
    assert_eq!(metrics.absent, 1);
    assert_eq!(metrics.stale_options, 1);
    assert_eq!(metrics.hits, 1);
}

#[test]
fn truncated_caches_are_rejected_with_a_line_number() {
    let g = grammar(BASE);
    let full = serialize_analysis(&g, &analyze_with(&g, &AnalysisOptions::from_grammar(&g)));
    let total_lines = full.lines().count();
    assert!(total_lines > 5, "serialization too small to truncate meaningfully");

    // Cut the file after every line boundary. No prefix may load: the
    // format ends each decision with an explicit `end` marker and records
    // the decision count up front, so every truncation is detectable.
    for keep in 0..total_lines {
        let truncated: String = full.lines().take(keep).map(|l| format!("{l}\n")).collect();
        let e = deserialize_analysis(&g, &truncated)
            .err()
            .unwrap_or_else(|| panic!("truncation to {keep} lines loaded successfully"));
        assert!(
            e.line >= 1 && e.line <= keep + 1,
            "truncation to {keep} lines blamed line {} ({e})",
            e.line
        );
    }
}

#[test]
fn corrupted_caches_are_rejected_never_panicking() {
    let g = grammar(BASE);
    let dir = workdir("corrupt");
    let path = cache_path(&dir, &g);
    let _ = std::fs::remove_file(&path);
    analyze_cached(&g, &path).expect("prime the cache");
    let full = std::fs::read_to_string(&path).expect("read cache");

    // Mangle each line in turn; every mangled file must be rejected with
    // a diagnosis naming that line (or a later one, when the damage only
    // becomes detectable downstream — e.g. an inflated state count).
    let lines: Vec<&str> = full.lines().collect();
    for (i, _) in lines.iter().enumerate() {
        for mangled_line in ["?garbage?", "state accept=99999 default=- edges= preds=", ""] {
            let mangled: String = lines
                .iter()
                .enumerate()
                .map(|(j, l)| if j == i { format!("{mangled_line}\n") } else { format!("{l}\n") })
                .collect();
            match deserialize_analysis(&g, &mangled) {
                Ok(_) if mangled_line.is_empty() => {
                    // Deleting a line is only acceptable when the result
                    // still serializes identically (blank lines are
                    // insignificant — but no content line is).
                    panic!("deleting content line {} loaded successfully", i + 1);
                }
                Ok(_) => panic!("corrupting line {} loaded successfully", i + 1),
                Err(e) => assert!(
                    e.line >= 1,
                    "corrupting line {} produced an unlocated error: {e}",
                    i + 1
                ),
            }
        }
    }

    // And the cache layer turns any such file into a repairing miss —
    // including a file written by the superseded v1 format, which lacks
    // the per-decision metrics lines.
    std::fs::write(&path, "llstar-analysis v1\nfingerprint zzzz\n").expect("plant old cache");
    let (a, status) = analyze_cached(&g, &path).expect("recover from corruption");
    match status {
        CacheStatus::Miss(CacheMiss::Invalid(e)) => {
            assert!(e.line >= 1, "invalid-cache diagnosis has no line: {e}")
        }
        other => panic!("expected an invalid-cache miss, got {other:?}"),
    }
    assert!(!a.from_cache);
    let (_, status) = analyze_cached(&g, &path).expect("repaired");
    assert!(status.is_hit(), "{status}");
}

#[test]
fn cache_written_by_parallel_analysis_hits_for_sequential_and_vice_versa() {
    let g = grammar(BASE);
    let dir = workdir("xthreads");

    // Parallel writer, then a hit regardless of the reader's options —
    // determinism means thread count never invalidates a cache.
    for (writer_threads, tag) in [(4usize, "par"), (1usize, "seq")] {
        let path = dir.join(format!("{tag}.dfa"));
        let _ = std::fs::remove_file(&path);
        let mut options = AnalysisOptions::from_grammar(&g);
        options.threads = writer_threads;
        let (_, status) = analyze_cached_with(&g, &path, &options).expect("prime");
        assert!(!status.is_hit());
        for reader_threads in [1usize, 4] {
            let mut options = AnalysisOptions::from_grammar(&g);
            options.threads = reader_threads;
            let (a, status) = analyze_cached_with(&g, &path, &options).expect("read");
            assert!(
                status.is_hit(),
                "writer threads={writer_threads}, reader threads={reader_threads}: {status}"
            );
            assert!(a.from_cache);
        }
    }
}
