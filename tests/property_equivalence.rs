//! Cross-engine property tests: sentences produced by random derivation
//! of a grammar must be accepted by the LL(*) engine, by generated
//! parsers' prediction machinery (indirectly, via the same DFAs), and —
//! for PEG-compatible grammars — by the packrat baseline.

use llstar::core::{analyze, analyze_cached};
use llstar::grammar::{apply_peg_mode, parse_grammar, rewrite_left_recursion, Grammar};
use llstar::packrat::PackratParser;
use llstar::runtime::{parse_text, NopHooks};
use llstar_suite::sample_sentence;

/// Mini-grammars exercising distinct analysis regimes. Each is written
/// so PEG ordered choice and LL(*) order-based ambiguity resolution
/// agree (no alternative's language is a strict prefix trap).
const MINI_GRAMMARS: &[(&str, &str, &str)] = &[
    (
        "ll1",
        "s",
        "grammar M; s : 'a' x 'z' | 'b' x ; x : C* ; C : 'c' ; WS : [ ]+ -> skip ;",
    ),
    (
        "llk",
        "s",
        "grammar M; s : A B C | A B D | A C ; A:'a'; B:'b'; C:'c'; D:'d'; WS : [ ]+ -> skip ;",
    ),
    (
        "cyclic",
        "s",
        "grammar M; s : A* X Y | A* X Z ; A:'a'; X:'x'; Y:'y'; Z:'z'; WS : [ ]+ -> skip ;",
    ),
    (
        "recursive",
        "e",
        "grammar M; e : '(' e ')' | '[' e ']' | INT ; INT : [0-9]+ ; WS : [ ]+ -> skip ;",
    ),
    (
        "peggy",
        "s",
        "grammar M; options { backtrack = true; } s : x '!' | x '?' ; x : '(' x ')' | ID ; ID : [a-z]+ ; WS : [ ]+ -> skip ;",
    ),
    (
        "stmtish",
        "p",
        r#"grammar M;
           p : st+ ;
           st : 'if' e 'then' st 'else' st 'end'
              | 'print' e ';'
              | ID '=' e ';'
              ;
           e : t ('+' t)* ;
           t : ID | INT | '(' e ')' ;
           ID : [a-z]+ ;
           INT : [0-9]+ ;
           WS : [ \t\r\n]+ -> skip ;"#,
    ),
];

fn load(src: &str) -> Grammar {
    apply_peg_mode(parse_grammar(src).expect("mini grammar parses"))
}

#[test]
fn sampled_sentences_parse_with_llstar() {
    for (name, start, src) in MINI_GRAMMARS {
        let g = load(src);
        let a = analyze(&g);
        let mut produced = 0;
        for seed in 0..60u64 {
            let Some(sentence) = sample_sentence(&g, start, seed, 8) else {
                continue;
            };
            produced += 1;
            let result = parse_text(&g, &a, &sentence, start, NopHooks);
            assert!(
                result.is_ok(),
                "{name}: derived sentence rejected: {sentence:?}: {}",
                result.unwrap_err()
            );
            // The tree must cover every token.
            let scanner = g.lexer.build().unwrap();
            let n_tokens = scanner.tokenize(&sentence).unwrap().len() - 1;
            let (tree, _) = parse_text(&g, &a, &sentence, start, NopHooks).unwrap();
            let covered = tree.token_count();
            assert!(
                covered == n_tokens || covered == n_tokens + 1,
                "{name}: {sentence:?}: tree covers {covered}/{n_tokens}"
            );
        }
        assert!(produced >= 20, "{name}: only {produced} sentences sampled");
    }
}

#[test]
fn llstar_and_packrat_agree_on_mini_grammars() {
    for (name, start, src) in MINI_GRAMMARS {
        let g = load(src);
        let a = analyze(&g);
        let scanner = g.lexer.build().unwrap();
        for seed in 0..40u64 {
            let Some(sentence) = sample_sentence(&g, start, seed, 8) else {
                continue;
            };
            // Valid sentences: both engines accept.
            let ll = parse_text(&g, &a, &sentence, start, NopHooks).is_ok();
            let tokens = scanner.tokenize(&sentence).unwrap();
            let mut packrat = PackratParser::new(&g, tokens);
            let pk = packrat.recognize(start).is_ok();
            assert!(ll, "{name}: LL(*) rejected {sentence:?}");
            assert!(pk, "{name}: packrat rejected {sentence:?}");

            // Mutated sentences: engines must agree on accept/reject.
            for cut in [sentence.len() / 2, sentence.len().saturating_sub(2)] {
                let mutated: String = sentence.chars().take(cut).collect();
                let Ok(tokens) = scanner.tokenize(&mutated) else {
                    continue;
                };
                let ll = parse_text(&g, &a, &mutated, start, NopHooks).is_ok();
                let mut packrat = PackratParser::new(&g, tokens);
                let pk = packrat.recognize(start).is_ok();
                assert_eq!(ll, pk, "{name}: engines disagree on mutated input {mutated:?}");
            }
        }
    }
}

#[test]
fn suite_sentences_parse_with_llstar() {
    for entry in llstar_suite::all() {
        let g = entry.load();
        let a = analyze(&g);
        let mut produced = 0;
        for seed in 0..15u64 {
            let Some(sentence) = sample_sentence(&g, entry.start_rule, seed, 9) else {
                continue;
            };
            produced += 1;
            // The RatsC typedef predicate defaults to true under NopHooks,
            // which can genuinely reject sentences whose IDs were derived
            // as plain identifiers; skip RatsC sempred interference by
            // accepting either outcome there.
            let result = parse_text(&g, &a, &sentence, entry.start_rule, NopHooks);
            if entry.name == "RatsC" {
                continue;
            }
            assert!(
                result.is_ok(),
                "{}: derived sentence rejected: {sentence:?}: {}",
                entry.name,
                result.unwrap_err()
            );
        }
        assert!(produced >= 5, "{}: only {produced} sentences sampled", entry.name);
    }
}

#[test]
fn cache_loaded_analysis_parses_identically() {
    // A parse driven by a cache-loaded analysis must be observationally
    // identical to one driven by a fresh analysis: same tree, same
    // ParseStats — lookahead depths, backtrack counts, memo traffic and
    // all. The serialized DFAs are the *whole* analysis as far as the
    // runtime is concerned.
    let dir = std::env::temp_dir().join(format!("llstar_prop_cache_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for (name, start, src) in MINI_GRAMMARS {
        let g = load(src);
        let fresh = analyze(&g);
        // All mini-grammars share the name "M", so `cache_path` would
        // alias their slots; key the file by test label instead.
        let path = dir.join(format!("{name}.dfa"));
        let _ = std::fs::remove_file(&path);
        let (_, status) = analyze_cached(&g, &path).expect("prime cache");
        assert!(!status.is_hit(), "{name}: cache pre-populated?");
        let (cached, status) = analyze_cached(&g, &path).expect("load cache");
        assert!(status.is_hit(), "{name}: {status}");
        assert!(cached.from_cache);

        for seed in 0..40u64 {
            let Some(sentence) = sample_sentence(&g, start, seed, 8) else {
                continue;
            };
            let (fresh_tree, fresh_stats) =
                parse_text(&g, &fresh, &sentence, start, NopHooks).expect("fresh parse");
            let (cached_tree, cached_stats) =
                parse_text(&g, &cached, &sentence, start, NopHooks).expect("cached parse");
            assert_eq!(
                fresh_tree.to_sexpr(&g, &sentence),
                cached_tree.to_sexpr(&g, &sentence),
                "{name}: trees differ on {sentence:?}"
            );
            assert_eq!(fresh_stats, cached_stats, "{name}: ParseStats differ on {sentence:?}");
        }
    }
}

#[test]
fn left_recursion_rewrite_preserves_the_language() {
    // The rewritten grammar must accept exactly the classic expression
    // strings; compare against a hand-written right-recursive equivalent
    // on both positive (derived) and negative (mutated) inputs.
    let original = parse_grammar(
        "grammar L; e : e ('*'|'/') e | e ('+'|'-') e | '(' e ')' | INT ; INT : [0-9]+ ; WS : [ ]+ -> skip ;",
    )
    .unwrap();
    let rewritten = rewrite_left_recursion(original).unwrap();
    let reference = parse_grammar(
        "grammar R; e : t (('+'|'-') t)* ; t : f (('*'|'/') f)* ; f : '(' e ')' | INT ; INT : [0-9]+ ; WS : [ ]+ -> skip ;",
    )
    .unwrap();
    let ra = analyze(&rewritten);
    let fa = analyze(&reference);
    for seed in 0..80u64 {
        let Some(sentence) = sample_sentence(&reference, "e", seed, 8) else {
            continue;
        };
        let rw = parse_text(&rewritten, &ra, &sentence, "e", NopHooks).is_ok();
        assert!(rw, "rewritten grammar rejected {sentence:?}");
        for cut in [1, sentence.len() / 2] {
            let mutated: String = sentence.chars().skip(cut).collect();
            let rw = parse_text(&rewritten, &ra, &mutated, "e", NopHooks).is_ok();
            let rf = parse_text(&reference, &fa, &mutated, "e", NopHooks).is_ok();
            assert_eq!(rw, rf, "disagree on {mutated:?}");
        }
    }
}
