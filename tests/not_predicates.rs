//! PEG not-predicates (Section 4.1): `!(α)=>` gates a production on the
//! upcoming input *not* matching the fragment — implemented, as the paper
//! suggests via Ford, by flipping the result of the speculative `synpred`
//! call. Exercised through the interpreter, the packrat baseline, and
//! the code generator.

use llstar::core::analyze;
use llstar::grammar::{parse_grammar, Element};
use llstar::packrat::PackratParser;
use llstar::runtime::{parse_text, NopHooks, ParseTree};

/// A classic PEG idiom: a "word" alternative that must not be a keyword.
const SRC: &str = r#"
grammar NotPred;
s : stmt+ EOF ;
stmt
    : 'end' ';'
    | !('end')=> ID ';'
    ;
ID : [a-z]+ ;
WS : [ ]+ -> skip ;
"#;

/// Dangling-modifier flavour: alternative 1 only when NOT followed by
/// an assignment.
const SRC2: &str = r#"
grammar NotAssign;
s : !(ID '=')=> ID ';' | ID '=' ID ';' ;
ID : [a-z]+ ;
WS : [ ]+ -> skip ;
"#;

#[test]
fn meta_language_parses_negated_predicates() {
    let g = parse_grammar(SRC).unwrap();
    let stmt = g.rule_by_name("stmt").unwrap();
    assert!(matches!(stmt.alts[1].elements[0], Element::NotSynPred(_)));
    assert_eq!(g.synpreds.len(), 1);
    // Display round-trips the `!(…)=>` syntax.
    let text = llstar::grammar::grammar_to_string(&g);
    assert!(text.contains("!('end')=>"), "{text}");
}

#[test]
fn interpreter_honors_not_predicates() {
    let g = parse_grammar(SRC2).unwrap();
    let a = analyze(&g);
    // `x ;` — not an assignment, alternative 1 fires.
    let (tree, _) = parse_text(&g, &a, "x ;", "s", NopHooks).unwrap();
    match tree {
        ParseTree::Rule { alt, .. } => assert_eq!(alt, 1),
        _ => unreachable!(),
    }
    // `x = y ;` — the not-predicate rejects alternative 1.
    let (tree, _) = parse_text(&g, &a, "x = y ;", "s", NopHooks).unwrap();
    match tree {
        ParseTree::Rule { alt, .. } => assert_eq!(alt, 2),
        _ => unreachable!(),
    }
}

#[test]
fn packrat_agrees_on_not_predicates() {
    let g = parse_grammar(SRC2).unwrap();
    let a = analyze(&g);
    let scanner = g.lexer.build().unwrap();
    for (input, expect_ok) in [("x ;", true), ("x = y ;", true), ("x = ;", false), ("; x", false)] {
        let Ok(tokens) = scanner.tokenize(input) else { continue };
        let ll = parse_text(&g, &a, input, "s", NopHooks).is_ok();
        let mut p = PackratParser::new(&g, tokens);
        let pk = p.recognize("s").is_ok();
        assert_eq!(ll, expect_ok, "LL(*) on {input:?}");
        assert_eq!(pk, expect_ok, "packrat on {input:?}");
    }
}

#[test]
fn keyword_exclusion_idiom_works() {
    let g = parse_grammar(SRC).unwrap();
    let a = analyze(&g);
    let (tree, _) = parse_text(&g, &a, "alpha ; end ; beta ;", "s", NopHooks).unwrap();
    // Three statements: ID, 'end', ID.
    assert_eq!(tree.token_count(), 7, "6 tokens + EOF");
}

#[test]
fn generated_code_flips_the_synpred() {
    let g = parse_grammar(SRC2).unwrap();
    let a = analyze(&g);
    let code = llstar::codegen::generate(&g, &a).unwrap();
    assert!(
        code.contains("if self.synpred_0() {") || code.contains("if !self.synpred_0()"),
        "{code}"
    );
    // The gate in alternative 1's body must be the negated form.
    assert!(code.contains("negated syntactic predicate"), "{code}");
}
