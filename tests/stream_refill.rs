//! `TokenStream::fill_to` incremental refill behaviour: pulls must cross
//! the source's internal buffer boundaries transparently, lookahead must
//! pull exactly what it needs (no over-read past EOF), and zero-length /
//! EOF-only inputs must round-trip through both the interpreter and a
//! generated parser.

mod common;

use common::compile_generated;
use llstar::core::analyze;
use llstar::grammar::{apply_peg_mode, parse_grammar, Grammar};
use llstar::runtime::{parse_text, NopHooks, Parser, TokenStream};
use llstar_lexer::Token;
use std::cell::Cell;
use std::process::Command;
use std::rc::Rc;

const TINY: &str = r#"
grammar Tiny;
prog : stat* EOF ;
stat : ID '=' expr ';' ;
expr : term ('+' term)* ;
term : ID | INT ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
"#;

const DRIVER: &str = r#"
fn main() {
    let input = std::env::args().nth(1).expect("input argument");
    match parse(&input) {
        Ok(tree) => println!("{}", tree.to_sexpr(&input)),
        Err(e) => {
            println!("ERROR {e}");
            std::process::exit(1);
        }
    }
}
"#;

fn tiny() -> (Grammar, llstar::core::GrammarAnalysis) {
    let g = apply_peg_mode(parse_grammar(TINY).expect("tiny grammar parses"));
    let a = analyze(&g);
    (g, a)
}

fn lex(g: &Grammar, text: &str) -> Vec<Token> {
    g.lexer.build().expect("lexer builds").tokenize(text).expect("input lexes")
}

/// A lazy source that holds tokens in an internal batch buffer of size
/// `batch`, refilling only when the parser's demand drains it — the
/// shape of a socket or pipe delivering tokens in fixed-size frames.
/// Returns the source plus a refill counter.
fn batched_source(
    tokens: Vec<Token>,
    batch: usize,
) -> (impl FnMut() -> Option<Token>, Rc<Cell<usize>>) {
    assert!(batch >= 1);
    let refills = Rc::new(Cell::new(0usize));
    let r = refills.clone();
    let mut queue: Vec<Token> = Vec::new(); // reversed batch; pop() yields in order
    let mut next = 0usize;
    let source = move || {
        if queue.is_empty() && next < tokens.len() {
            let end = (next + batch).min(tokens.len());
            queue.extend(tokens[next..end].iter().rev().copied());
            next = end;
            r.set(r.get() + 1);
        }
        queue.pop()
    };
    (source, refills)
}

#[test]
fn refill_crosses_batch_boundaries_for_every_batch_size() {
    let (g, a) = tiny();
    let input = "a = 1 + b ; c = 2 ; d = e + 3 + f ;";
    let tokens = lex(&g, input);
    let total = tokens.len();
    let (expected, _) = parse_text(&g, &a, input, "prog", NopHooks).expect("eager parse");
    let expected = expected.to_sexpr(&g, input);

    // Batch sizes straddling every interesting boundary: single-token
    // frames, frames smaller than the k=2 decision lookahead window,
    // frames that split statements, and one frame larger than the input.
    for batch in [1, 2, 3, 5, 7, total + 10] {
        let (source, refills) = batched_source(tokens.clone(), batch);
        let mut parser = Parser::new(&g, &a, TokenStream::from_source(source), NopHooks);
        let tree = parser.parse_to_eof("prog").expect("lazy parse succeeds");
        assert_eq!(tree.to_sexpr(&g, input), expected, "batch size {batch} changed the tree");
        assert_eq!(
            refills.get(),
            total.div_ceil(batch),
            "fill_to must drain the source across exactly ceil({total}/{batch}) refills"
        );
    }
}

#[test]
fn fill_to_pulls_exactly_what_lookahead_requires() {
    let (g, _) = tiny();
    let tokens = lex(&g, "a = 1 ; b = 2 ;"); // 8 tokens + EOF
    let total = tokens.len();
    let pulled = Rc::new(Cell::new(0usize));
    let p = pulled.clone();
    let mut i = 0;
    let mut ts = TokenStream::from_source(move || {
        let t = tokens.get(i).copied();
        if t.is_some() {
            i += 1;
            p.set(p.get().max(i));
        }
        t
    });

    assert_eq!(ts.buffered_len(), 0, "construction pulls nothing");
    ts.la(1);
    assert_eq!(ts.buffered_len(), 1, "la(1) buffers exactly one token");
    ts.la(4);
    assert_eq!(ts.buffered_len(), 4, "la(4) fills to exactly four");
    ts.la(3);
    assert_eq!(pulled.get(), 4, "lookahead within the buffer is the fast path: no pull");
    // Crossing the buffered boundary by one pulls exactly one more.
    ts.la(5);
    assert_eq!(ts.buffered_len(), 5);
    // consume() pre-fills one past the new cursor and no further.
    ts.consume();
    assert!(ts.buffered_len() <= 5 + 1, "consume over-pulled: {}", ts.buffered_len());
    // Asking far past EOF stops at the source's EOF token.
    ts.la(500);
    assert_eq!(ts.buffered_len(), total, "saturating lookahead stops at EOF");
    assert_eq!(pulled.get(), total, "the None tail is never drained");
}

#[test]
fn zero_length_and_eof_only_inputs_through_both_engines() {
    let (g, a) = tiny();
    let exe = compile_generated(
        "refill_tiny",
        &llstar::codegen::generate(&g, &a).expect("codegen"),
        DRIVER,
    );

    // Zero-length and whitespace-only inputs both lex to an EOF-only
    // stream; `prog : stat* EOF` accepts them in every engine.
    for input in ["", "   \t\n"] {
        let (tree, _) = parse_text(&g, &a, input, "prog", NopHooks)
            .unwrap_or_else(|e| panic!("interpreter rejects {input:?}: {e}"));
        let interp = tree.to_sexpr(&g, input);

        let out = Command::new(&exe).arg(input).output().expect("generated parser runs");
        assert!(out.status.success(), "generated parser rejects {input:?}");
        let generated = String::from_utf8_lossy(&out.stdout).trim().to_string();
        assert_eq!(interp, generated, "engines disagree on {input:?}");
    }
}

#[test]
fn eof_only_lazy_stream_synthesizes_eof_and_parses() {
    let (g, a) = tiny();

    // A source that is exhausted from the start: fill_to must synthesize
    // the EOF token on the first pull and never re-enter the source.
    let pulls = Rc::new(Cell::new(0usize));
    let p = pulls.clone();
    let mut parser = Parser::new(
        &g,
        &a,
        TokenStream::from_source(move || {
            p.set(p.get() + 1);
            None
        }),
        NopHooks,
    );
    let tree = parser.parse_to_eof("prog").expect("empty stream parses");
    assert_eq!(pulls.get(), 1, "one probing pull synthesizes EOF; the tail is never drained");

    // The synthesized-EOF tree matches the eager zero-length parse.
    let (eager, _) = parse_text(&g, &a, "", "prog", NopHooks).expect("eager empty parse");
    assert_eq!(tree.to_sexpr(&g, ""), eager.to_sexpr(&g, ""));
}
