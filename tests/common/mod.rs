//! Corpus-walking and engine-setup helpers shared by the parity and
//! gauntlet suites. Each integration-test binary compiles its own copy,
//! so helpers a given suite doesn't use are expected dead code.
#![allow(dead_code)]

use llstar::core::{analyze, GrammarAnalysis};
use llstar::grammar::{apply_peg_mode, parse_grammar, Grammar};
use llstar::runtime::{CoverageSink, JsonlSink, NopHooks, Parser, TeeSink, TokenStream};
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The four checked-in repo grammars with shipped corpora under
/// `grammars/corpus/<stem>/`.
pub const SUITE_STEMS: &[&str] = &["calculator", "config", "json", "paper_section2"];

/// A path relative to the repo root.
pub fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// The smoke input for a repo grammar.
pub fn smoke_file(stem: &str) -> PathBuf {
    repo_path(&format!("grammars/smoke/{stem}.txt"))
}

/// Every `*.txt` under `grammars/corpus/<stem>/`, sorted by file name
/// for determinism.
pub fn corpus_files(stem: &str) -> Vec<PathBuf> {
    let dir = repo_path(&format!("grammars/corpus/{stem}"));
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {dir:?}: {e}"))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "empty corpus for {stem}");
    files
}

/// The full input set for a repo grammar: the corpus directory plus the
/// smoke input, sorted.
pub fn input_files(stem: &str) -> Vec<PathBuf> {
    let mut files = corpus_files(stem);
    files.push(smoke_file(stem));
    files.sort();
    assert!(files.len() > 1, "thin corpus for {stem}");
    files
}

/// Loads and analyzes a repo grammar from `grammars/<stem>.g`.
pub fn load_grammar(stem: &str) -> (Grammar, GrammarAnalysis) {
    let source = std::fs::read_to_string(repo_path(&format!("grammars/{stem}.g")))
        .expect("grammar file readable");
    load_grammar_source(&source)
}

/// Parses, PEG-lowers, and analyzes grammar source text.
pub fn load_grammar_source(source: &str) -> (Grammar, GrammarAnalysis) {
    let grammar = apply_peg_mode(parse_grammar(source).expect("grammar parses"));
    let analysis = analyze(&grammar);
    (grammar, analysis)
}

/// Compiles a generated parser module plus a `fn main` driver into a
/// standalone executable under a per-process temp dir, returning the
/// executable path.
pub fn compile_generated(tag: &str, code: &str, driver: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("llstar_gen_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src_path = dir.join("parser_main.rs");
    std::fs::write(&src_path, format!("{code}\n{driver}\n")).expect("write generated source");

    let exe = dir.join("parser_main");
    let out = Command::new("rustc")
        .args(["--edition", "2021", "-O", "-o"])
        .arg(&exe)
        .arg(&src_path)
        .output()
        .expect("rustc runs");
    assert!(
        out.status.success(),
        "generated code failed to compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    exe
}

/// Everything one interpreter configuration produces over a corpus:
/// rendered trees, the trace JSONL stream, and the merged coverage JSON.
pub struct InterpArtifacts {
    pub trees: String,
    pub trace: String,
    pub coverage: String,
}

/// Parses every `(label, text)` input with the chosen dispatch mode,
/// returning rendered trees (debug format, one per line), the full trace
/// JSONL, and the corpus coverage JSON. Panics with `label` on failure.
pub fn interp_corpus(
    g: &Grammar,
    a: &GrammarAnalysis,
    inputs: &[(String, String)],
    compiled: bool,
) -> InterpArtifacts {
    let start = g.start_rule().name.clone();
    let scanner = g.lexer.build().expect("lexer builds");
    let mut trees = String::new();
    let mut trace_sink = JsonlSink::new(Vec::<u8>::new());
    let mut cov_sink = CoverageSink::new(g, a);
    for (label, text) in inputs {
        let tokens = scanner
            .tokenize(text)
            .unwrap_or_else(|e| panic!("{label}: corpus input fails to lex: {e}"));
        // Trace pass.
        let mut parser = Parser::new(g, a, TokenStream::new(tokens.clone()), NopHooks);
        parser.set_compiled_dispatch(compiled);
        parser.set_trace_sink(&mut trace_sink);
        let tree = parser
            .parse_to_eof(&start)
            .unwrap_or_else(|e| panic!("parse failed on {label} (compiled={compiled}): {e}"));
        trees.push_str(&format!("{tree:?}\n"));
        // Coverage pass (separate parse: one sink slot per parser).
        let mut parser = Parser::new(g, a, TokenStream::new(tokens), NopHooks);
        parser.set_compiled_dispatch(compiled);
        parser.set_trace_sink(&mut cov_sink);
        parser.parse_to_eof(&start).expect("coverage pass parses");
        cov_sink.finish_file();
    }
    let (bytes, err) = trace_sink.into_inner();
    assert!(err.is_none(), "trace sink I/O error");
    let trace = String::from_utf8(bytes).expect("trace is utf8");
    InterpArtifacts { trees, trace, coverage: cov_sink.into_map().to_json() }
}

/// One interpreter configuration's view of a corpus, sized for MB-scale
/// inputs: per-input tree renderings (full s-expressions when `full`,
/// else FNV fingerprints of them), a fingerprint of the trace JSONL
/// stream, and the merged coverage JSON (always full — it is small).
pub struct OracleRun {
    pub trees: Vec<String>,
    pub trace_fp: String,
    pub coverage: String,
}

/// Parses every `(label, text)` input **once** with the chosen dispatch
/// mode, teeing the trace stream into both a JSONL fingerprint and the
/// corpus coverage fold. The single-pass tee matters at gauntlet scale:
/// the PEG-mode grammars interpret at tens of kilotokens per second, so
/// each extra pass over a megabyte corpus costs seconds.
pub fn oracle_interp_run(
    g: &Grammar,
    a: &GrammarAnalysis,
    start: &str,
    inputs: &[(String, String)],
    compiled: bool,
    full: bool,
) -> OracleRun {
    let scanner = g.lexer.build().expect("lexer builds");
    let mut jsonl = JsonlSink::new(HashWriter::new());
    let mut cov = CoverageSink::new(g, a);
    let mut trees = Vec::with_capacity(inputs.len());
    for (label, text) in inputs {
        let tokens = scanner
            .tokenize(text)
            .unwrap_or_else(|e| panic!("{label}: corpus input fails to lex: {e}"));
        let mut tee = TeeSink(&mut jsonl, &mut cov);
        let mut parser = Parser::new(g, a, TokenStream::new(tokens), NopHooks);
        parser.set_compiled_dispatch(compiled);
        parser.set_trace_sink(&mut tee);
        let tree = parser
            .parse_to_eof(start)
            .unwrap_or_else(|e| panic!("parse failed on {label} (compiled={compiled}): {e}"));
        drop(parser);
        cov.finish_file();
        let sexpr = tree.to_sexpr(g, text);
        trees.push(if full { sexpr } else { fingerprint(sexpr.as_bytes()) });
    }
    let (hasher, err) = jsonl.into_inner();
    assert!(err.is_none(), "trace sink I/O error");
    OracleRun { trees, trace_fp: hasher.fingerprint(), coverage: cov.into_map().to_json() }
}

/// Reads a file set into `(label, text)` pairs for [`interp_corpus`].
pub fn read_inputs(files: &[PathBuf]) -> Vec<(String, String)> {
    files
        .iter()
        .map(|f| {
            (f.display().to_string(), std::fs::read_to_string(f).expect("corpus file readable"))
        })
        .collect()
}

/// An `io::Write` that keeps only an FNV-1a 64 fingerprint and byte
/// count, so MB-scale trace streams can be compared without buffering.
pub struct HashWriter {
    hash: u64,
    len: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl HashWriter {
    pub fn new() -> Self {
        HashWriter { hash: FNV_OFFSET, len: 0 }
    }

    /// `fnv=<hash>:len=<bytes>` — equal iff the streams were byte-equal
    /// (up to hash collision).
    pub fn fingerprint(&self) -> String {
        format!("fnv={:016x}:len={}", self.hash, self.len)
    }
}

impl Default for HashWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl io::Write for HashWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &b in buf {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self.len += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// FNV-1a 64 over a byte string (the same function [`HashWriter`]
/// streams), rendered like [`HashWriter::fingerprint`].
pub fn fingerprint(bytes: &[u8]) -> String {
    let mut w = HashWriter::new();
    io::Write::write_all(&mut w, bytes).expect("hash writer never fails");
    w.fingerprint()
}
