//! Robustness fuzzing: the grammar and pattern front ends must reject
//! arbitrary garbage with errors, never panic, and valid inputs must
//! round-trip through display/reparse cycles.

use llstar::grammar::{grammar_to_string, parse_grammar};
use llstar_lexer::Rx;
use llstar_rng::Rng64;

/// Arbitrary text must never panic the meta-parser.
#[test]
fn meta_parser_never_panics() {
    let mut rng = Rng64::seed_from_u64(0xf001);
    for _ in 0..256 {
        let input = rng.gen_string(200);
        let _ = parse_grammar(&input);
    }
}

/// Arbitrary meta-language-shaped text must never panic either.
#[test]
fn meta_parser_never_panics_on_grammar_shaped_input() {
    const ALPHABET: &str = "abcXYZ0189_:;|'\"(){}[]*+?~=> \n-";
    let mut rng = Rng64::seed_from_u64(0xf002);
    for _ in 0..256 {
        let body = rng.gen_string_from(ALPHABET, 300);
        let _ = parse_grammar(&format!("grammar F; {body}"));
    }
}

/// Arbitrary pattern text must never panic the regex parser.
#[test]
fn rx_parser_never_panics() {
    let mut rng = Rng64::seed_from_u64(0xf003);
    for _ in 0..256 {
        let input = rng.gen_string(100);
        let _ = Rx::parse(&input);
    }
}

/// Valid grammars render to text that mentions every rule.
#[test]
fn display_mentions_every_rule() {
    for n_rules in 1usize..6 {
        let mut src = String::from("grammar G; ");
        for i in 0..n_rules {
            let target = if i + 1 < n_rules { format!("r{}", i + 1) } else { "A".to_string() };
            src.push_str(&format!("r{i} : {target} | A ; "));
        }
        src.push_str("A : 'a' ;");
        let g = parse_grammar(&src).unwrap();
        let text = grammar_to_string(&g);
        for i in 0..n_rules {
            assert!(text.contains(&format!("r{i} :")), "{text}");
        }
    }
}

#[test]
fn deeply_nested_blocks_parse_or_error_cleanly() {
    // Deep nesting must not blow the stack at meta-parse time for
    // reasonable depths.
    let depth = 200;
    let mut body = String::from("A");
    for _ in 0..depth {
        body = format!("({body})");
    }
    let src = format!("grammar D; s : {body} ; A : 'a' ;");
    let g = parse_grammar(&src).expect("nested blocks parse");
    assert_eq!(g.rules.len(), 1);
}

#[test]
fn pathological_action_braces() {
    for src in [
        "grammar A; s : {unclosed A ; A:'a';",
        "grammar A; s : {{half}} } A ; A:'a';",
        "grammar A; s : {\"}\"} A ; A:'a';",
        "grammar A; s : {'}'} A ; A:'a';",
    ] {
        let _ = parse_grammar(src); // must not panic
    }
}
