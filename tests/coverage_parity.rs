//! Interpreted/generated coverage parity: folding the interpreter's
//! trace stream through `CoverageSink` and running a
//! coverage-instrumented generated parser over the same corpus must
//! produce **byte-identical coverage JSON** — same rule-alternative hit
//! counts, DFA state/edge traversals, lookahead histograms, and
//! backtrack/memo attribution.

use llstar::codegen::{generate_with, CodegenOptions};
use llstar::core::GrammarAnalysis;
use llstar::grammar::Grammar;
use llstar::runtime::{CoverageSink, NopHooks, Parser, TokenStream};
use std::path::{Path, PathBuf};
use std::process::Command;

mod common;
use common::{compile_generated, corpus_files, load_grammar, smoke_file, SUITE_STEMS};

/// Folds the interpreter's trace stream into coverage JSON across a
/// corpus (the reference side of the parity check).
fn interpreter_coverage(g: &Grammar, a: &GrammarAnalysis, files: &[PathBuf]) -> String {
    let start = g.start_rule().name.clone();
    let mut sink = CoverageSink::new(g, a);
    for file in files {
        let input = std::fs::read_to_string(file).expect("corpus file readable");
        let scanner = g.lexer.build().expect("lexer builds");
        let tokens = scanner.tokenize(&input).expect("corpus input lexes");
        let mut parser = Parser::new(g, a, TokenStream::new(tokens), NopHooks);
        parser.set_trace_sink(&mut sink);
        parser
            .parse_to_eof(&start)
            .unwrap_or_else(|e| panic!("interpreter failed on {file:?}: {e}"));
        sink.finish_file();
    }
    sink.into_map().to_json()
}

/// Compiles a coverage-instrumented generated parser plus a driver that
/// parses every argv path and prints the merged coverage JSON.
fn build_generated(stem: &str, g: &Grammar, a: &GrammarAnalysis) -> PathBuf {
    let code = generate_with(g, a, CodegenOptions { coverage: true, ..Default::default() })
        .expect("generation succeeds");
    let start = &g.start_rule().name;
    let driver = format!(
        r#"
fn main() {{
    let mut cov = Coverage::new();
    for path in std::env::args().skip(1) {{
        let input = std::fs::read_to_string(&path).expect("corpus file readable");
        let tokens = tokenize(&input).expect("lexes");
        let mut hooks = NopHooks;
        let mut parser = Parser::new(tokens, &mut hooks);
        let tree = parser.parse_{start}().expect("parses");
        assert!(parser.la(1) == 0, "trailing input in {{path}}");
        let _ = tree;
        cov.merge(&parser.cov);
        cov.files += 1;
    }}
    println!("{{}}", cov.to_json());
}}
"#
    );
    compile_generated(&format!("coverage_{stem}"), &code, &driver)
}

fn generated_coverage(exe: &Path, files: &[PathBuf]) -> String {
    let out = Command::new(exe).args(files).output().expect("generated parser runs");
    assert!(
        out.status.success(),
        "generated parser aborted: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output").trim_end().to_string()
}

#[test]
fn coverage_json_is_byte_identical_across_engines() {
    for stem in SUITE_STEMS {
        let (g, a) = load_grammar(stem);
        let exe = build_generated(stem, &g, &a);

        // Corpus-dir fold (several files merged).
        let files = corpus_files(stem);
        let expected = interpreter_coverage(&g, &a, &files);
        let got = generated_coverage(&exe, &files);
        assert_eq!(got, expected, "{stem}: engines diverged over grammars/corpus/{stem}/");

        // Single smoke input (the per-file shape, files = 1).
        let smoke = vec![smoke_file(stem)];
        let expected = interpreter_coverage(&g, &a, &smoke);
        let got = generated_coverage(&exe, &smoke);
        assert_eq!(got, expected, "{stem}: engines diverged over grammars/smoke/{stem}.txt");
    }
}

#[test]
fn corpus_covers_every_alternative() {
    // The shipped corpora are full-coverage fixtures: the CI smoke step
    // runs `llstar coverage --fail-uncovered` over them, so regressions
    // here should fail loudly with the rule/alt that lost coverage.
    for stem in SUITE_STEMS {
        let (g, a) = load_grammar(stem);
        let files = corpus_files(stem);
        let json = interpreter_coverage(&g, &a, &files);
        let map = llstar::core::CoverageMap::from_json(
            &llstar::core::json::Json::parse(&json).expect("coverage json parses"),
        )
        .expect("coverage json round-trips");
        let uncovered = map.uncovered_alts();
        assert!(
            uncovered.is_empty(),
            "{stem}: uncovered alternatives {uncovered:?} (rule index, alt index)"
        );
    }
}
