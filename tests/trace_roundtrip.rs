//! Exhaustive `TraceEvent` JSON round-trip property test.
//!
//! Every variant is sampled with randomized fields (seeded `llstar-rng`,
//! so failures reproduce exactly) and must survive
//! `to_json → Json::parse → from_json` with equality AND re-encode to
//! the identical bytes — the property the replay tooling (`llstar
//! coverage` over recorded JSONL, trace diffing, parity tests) depends
//! on.
//!
//! The `variant_index` match is deliberately wildcard-free: adding a
//! `TraceEvent` variant breaks this test's compilation until the new
//! variant is sampled and round-tripped here.

use llstar::core::json::Json;
use llstar::runtime::{parse_jsonl, MemoKind, TraceEvent};
use llstar_rng::Rng64;

/// Maps each variant to its sampler index, with no wildcard arm: this is
/// the compile-time checklist that keeps the sampler exhaustive.
fn variant_index(event: &TraceEvent) -> usize {
    match event {
        TraceEvent::RuleEnter { .. } => 0,
        TraceEvent::RuleExit { .. } => 1,
        TraceEvent::PredictStart { .. } => 2,
        TraceEvent::PredictStop { .. } => 3,
        TraceEvent::BacktrackEnter { .. } => 4,
        TraceEvent::BacktrackExit { .. } => 5,
        TraceEvent::MemoHit { .. } => 6,
        TraceEvent::MemoWrite { .. } => 7,
        TraceEvent::Sempred { .. } => 8,
        TraceEvent::SyntaxError { .. } => 9,
        TraceEvent::Recover { .. } => 10,
        TraceEvent::SyncSkip { .. } => 11,
        TraceEvent::TokenInserted { .. } => 12,
        TraceEvent::TokenDeleted { .. } => 13,
    }
}

const VARIANTS: usize = 14;

fn sample(variant: usize, rng: &mut Rng64) -> TraceEvent {
    let token_index = rng.gen_range(0usize..1_000_000);
    let id = rng.gen_range(0u32..10_000);
    let kind = if rng.gen_bool(0.5) { MemoKind::Rule } else { MemoKind::SynPred };
    let event = match variant {
        0 => TraceEvent::RuleEnter { rule: id, token_index },
        1 => TraceEvent::RuleExit {
            rule: id,
            token_index,
            alt: rng.gen_range(0u16..=20),
            ok: rng.gen_bool(0.5),
        },
        2 => TraceEvent::PredictStart { decision: id, token_index },
        3 => {
            let len = rng.gen_range(0usize..=8);
            TraceEvent::PredictStop {
                decision: id,
                token_index,
                alt: rng.gen_range(1u16..=20),
                lookahead: rng.gen_range(1u64..=1_000_000),
                path: (0..len).map(|_| rng.gen_range(0u32..64)).collect(),
                backtracked: rng.gen_bool(0.5),
                spec_depth: rng.gen_range(0u64..=1_000_000),
            }
        }
        4 => TraceEvent::BacktrackEnter {
            synpred: id,
            token_index,
            nesting: rng.gen_range(0u32..=8),
        },
        5 => TraceEvent::BacktrackExit {
            synpred: id,
            token_index,
            matched: rng.gen_bool(0.5),
            consumed: rng.gen_range(0u64..=1_000_000),
            nesting: rng.gen_range(0u32..=8),
        },
        6 => TraceEvent::MemoHit { kind, id, token_index, success: rng.gen_bool(0.5) },
        7 => TraceEvent::MemoWrite { kind, id, token_index, success: rng.gen_bool(0.5) },
        // Arbitrary (escaping-hostile) predicate text, unicode included.
        8 => TraceEvent::Sempred {
            pred: rng.gen_string(24),
            token_index,
            outcome: rng.gen_bool(0.5),
        },
        9 => TraceEvent::SyntaxError { token_index, speculating: rng.gen_bool(0.5) },
        10 => TraceEvent::Recover { token_index, rule: id },
        11 => TraceEvent::SyncSkip { token_index, skipped: rng.gen_range(0u64..=1_000) },
        12 => TraceEvent::TokenInserted { token_index, ttype: rng.gen_range(0u32..=500) },
        13 => TraceEvent::TokenDeleted { token_index, ttype: rng.gen_range(0u32..=500) },
        _ => unreachable!("sampler covers {VARIANTS} variants"),
    };
    assert_eq!(variant_index(&event), variant, "sampler built the wrong variant");
    event
}

#[test]
fn every_variant_round_trips_byte_identically() {
    let mut rng = Rng64::seed_from_u64(0x5eed_11ab);
    for round in 0..200 {
        for variant in 0..VARIANTS {
            let event = sample(variant, &mut rng);
            let json = event.to_json();
            let value = Json::parse(&json)
                .unwrap_or_else(|e| panic!("round {round} variant {variant}: {e}\n{json}"));
            let back = TraceEvent::from_json(&value)
                .unwrap_or_else(|e| panic!("round {round} variant {variant}: {e}\n{json}"));
            assert_eq!(back, event, "round {round}: decoded event differs\n{json}");
            assert_eq!(back.to_json(), json, "round {round}: re-encode is not byte-identical");
        }
    }
}

#[test]
fn headed_streams_round_trip_through_parse_jsonl() {
    let mut rng = Rng64::seed_from_u64(0xcafe_f00d);
    let events: Vec<TraceEvent> = (0..VARIANTS)
        .flat_map(|variant| {
            let e0 = sample(variant, &mut rng);
            let e1 = sample(variant, &mut rng);
            [e0, e1]
        })
        .collect();
    let mut stream = String::from("{\"type\":\"schema\",\"stream\":\"trace\",\"version\":2}\n");
    for event in &events {
        stream.push_str(&event.to_json());
        stream.push('\n');
    }
    let parsed = parse_jsonl(&stream).expect("headed stream parses");
    assert_eq!(parsed, events);

    // A stream from a different writer is rejected up front.
    let wrong = stream.replacen("\"version\":2", "\"version\":99", 1);
    let (line, err) = parse_jsonl(&wrong).expect_err("future version must be rejected");
    assert_eq!(line, 1);
    assert!(err.contains("version 99"), "{err}");
}
