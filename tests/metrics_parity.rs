//! Cross-engine metric parity: the always-on counters must agree to the
//! byte across every execution path. For each suite grammar the
//! interpreter (linear and compiled dispatch), a re-entrant
//! [`ParseSession`], and a metrics-instrumented generated parser walk
//! the same corpus, and their deterministic snapshot JSON
//! (`MetricsSnapshot::to_json(engine, false)` vs the generated
//! `Metrics::to_json(engine)`) must be identical — same prediction
//! event counts, lookahead sums/maxima/histograms, backtrack and
//! speculation attribution, memo traffic, and token totals.
//!
//! [`ParseSession`]: llstar::runtime::ParseSession

use llstar::codegen::{generate_with, CodegenOptions};
use llstar::core::{grammar_fingerprint, GrammarAnalysis};
use llstar::grammar::Grammar;
use llstar::runtime::{MetricsSnapshot, NopHooks, ParseSession, Parser, TokenStream};
use std::path::{Path, PathBuf};
use std::process::Command;

mod common;
use common::{compile_generated, corpus_files, load_grammar, smoke_file, SUITE_STEMS};

/// Parses a corpus with fresh interpreter instances (one per file,
/// matching the generated driver's lifecycle) and folds each parse's
/// snapshot into one accumulated snapshot.
fn interpreter_metrics(
    g: &Grammar,
    a: &GrammarAnalysis,
    files: &[PathBuf],
    compiled: bool,
) -> String {
    let start = g.start_rule().name.clone();
    let scanner = g.lexer.build().expect("lexer builds");
    let mut acc = MetricsSnapshot::empty(grammar_fingerprint(g));
    for file in files {
        let input = std::fs::read_to_string(file).expect("corpus file readable");
        let tokens = scanner.tokenize(&input).expect("corpus input lexes");
        let mut parser = Parser::new(g, a, TokenStream::new(tokens), NopHooks);
        parser.set_compiled_dispatch(compiled);
        parser
            .parse_to_eof(&start)
            .unwrap_or_else(|e| panic!("interpreter failed on {file:?}: {e}"));
        acc.merge(&parser.metrics_snapshot());
    }
    acc.to_json("parity", false)
}

/// Parses the corpus through one recycled [`ParseSession`] and renders
/// its accumulated metrics without the timing tier (latency histograms
/// are wall-clock and can never be parity-compared).
fn session_metrics(g: &Grammar, a: &GrammarAnalysis, files: &[PathBuf]) -> String {
    let start = g.start_rule().name.clone();
    let mut session = ParseSession::new(g, a, &start, NopHooks).expect("session builds");
    for file in files {
        let input = std::fs::read_to_string(file).expect("corpus file readable");
        session.parse_to_eof(&input).unwrap_or_else(|e| panic!("session failed on {file:?}: {e}"));
    }
    session.metrics().to_json("parity", false)
}

/// Compiles a metrics-instrumented generated parser plus a driver that
/// parses every argv path and prints the merged metric JSON. The driver
/// calls `finish_parse` itself after the EOF check — the generated
/// entry points return trees and leave parse-level accounting to the
/// embedder, mirroring how the runtime's `parse_to_eof` wraps `parse`.
fn build_generated(
    tag: &str,
    g: &Grammar,
    a: &GrammarAnalysis,
    options: CodegenOptions,
) -> PathBuf {
    let code = generate_with(g, a, options).expect("generation succeeds");
    let start = &g.start_rule().name;
    let driver = format!(
        r#"
fn main() {{
    let mut met = Metrics::new();
    for path in std::env::args().skip(1) {{
        let input = std::fs::read_to_string(&path).expect("corpus file readable");
        let tokens = tokenize(&input).expect("lexes");
        let mut hooks = NopHooks;
        let mut parser = Parser::new(tokens, &mut hooks);
        let tree = parser.parse_{start}().expect("parses");
        assert!(parser.la(1) == 0, "trailing input in {{path}}");
        let _ = tree;
        parser.met.finish_parse(parser.pos as u64);
        met.merge(&parser.met);
    }}
    println!("{{}}", met.to_json("parity"));
}}
"#
    );
    compile_generated(tag, &code, &driver)
}

fn generated_metrics(exe: &Path, files: &[PathBuf]) -> String {
    let out = Command::new(exe).args(files).output().expect("generated parser runs");
    assert!(
        out.status.success(),
        "generated parser aborted: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output").trim_end().to_string()
}

#[test]
fn metric_snapshots_are_byte_identical_across_engines() {
    for stem in SUITE_STEMS {
        let (g, a) = load_grammar(stem);
        // Coverage + metrics together exercises the chained predictor
        // instrumentation (`met_stop` wrapping `cov_stop`), the shape
        // the gauntlet and CI smoke builds use.
        let exe = build_generated(
            &format!("metrics_{stem}"),
            &g,
            &a,
            CodegenOptions { coverage: true, metrics: true, ..Default::default() },
        );

        for files in [corpus_files(stem), vec![smoke_file(stem)]] {
            let linear = interpreter_metrics(&g, &a, &files, false);
            let compiled = interpreter_metrics(&g, &a, &files, true);
            assert_eq!(
                linear, compiled,
                "{stem}: linear vs compiled dispatch metric snapshots diverged"
            );
            let session = session_metrics(&g, &a, &files);
            assert_eq!(linear, session, "{stem}: re-entrant session metrics diverged");
            let generated = generated_metrics(&exe, &files);
            assert_eq!(linear, generated, "{stem}: generated parser metrics diverged");
        }
    }
}

#[test]
fn metrics_only_codegen_compiles_and_agrees() {
    // Without coverage the generated parser still tracks speculation
    // widths (the shared `last_spec` plumbing) and must own the
    // fingerprint constant itself.
    let stem = SUITE_STEMS[0];
    let (g, a) = load_grammar(stem);
    let exe = build_generated(
        &format!("metrics_only_{stem}"),
        &g,
        &a,
        CodegenOptions { metrics: true, ..Default::default() },
    );
    let files = corpus_files(stem);
    let expected = interpreter_metrics(&g, &a, &files, false);
    let got = generated_metrics(&exe, &files);
    assert_eq!(got, expected, "{stem}: metrics-only generated parser diverged");
}
