//! Recovery fuzzing: take sentences *known* to be in a grammar's
//! language (random leftmost derivation), corrupt a handful of tokens,
//! and parse with error recovery enabled. The parser must never panic,
//! must always reach EOF (an `Ok` from the recovering entry point), and
//! must report a number of diagnostics linear in the number of
//! corruption sites — cascade suppression is what keeps one typo from
//! exploding into dozens of errors.

use llstar::core::analyze;
use llstar::grammar::{apply_peg_mode, parse_grammar, Grammar};
use llstar::runtime::{parse_text_recovering, NopHooks};
use llstar_rng::Rng64;
use llstar_suite::sample_sentence;

/// Per-site error allowance. Deleting one token can legitimately
/// surface a couple of downstream diagnostics (the repair resyncs past
/// material the grammar still needed), but growth must stay linear.
const ERRORS_PER_SITE: usize = 8;

/// Applies `k` seeded token-level corruptions (delete, duplicate, or
/// swap-adjacent) to a whitespace-separated sentence. Returns `None`
/// when the sentence is too short to corrupt.
fn corrupt(sentence: &str, k: usize, seed: u64) -> Option<(String, usize)> {
    let mut tokens: Vec<String> = sentence.split_whitespace().map(str::to_string).collect();
    if tokens.is_empty() {
        return None;
    }
    let mut rng = Rng64::seed_from_u64(seed);
    let mut applied = 0usize;
    for _ in 0..k {
        if tokens.is_empty() {
            break;
        }
        let i = rng.gen_range(0..tokens.len());
        match rng.gen_range(0..3u8) {
            0 => {
                tokens.remove(i);
            }
            1 => {
                let t = tokens[i].clone();
                tokens.insert(i, t);
            }
            _ => {
                if i + 1 < tokens.len() {
                    tokens.swap(i, i + 1);
                } else {
                    let t = tokens[i].clone();
                    tokens.insert(i, t);
                }
            }
        }
        applied += 1;
    }
    if applied == 0 {
        return None;
    }
    Some((tokens.join(" "), applied))
}

fn fuzz_grammar(label: &str, grammar: &Grammar, start: &str, seeds: u64, max_depth: usize) {
    let analysis = analyze(grammar);
    let mut corrupted_runs = 0usize;
    for seed in 0..seeds {
        let Some(sentence) = sample_sentence(grammar, start, seed, max_depth) else {
            continue;
        };
        for k in 1..=3usize {
            let Some((bad, applied)) = corrupt(&sentence, k, seed.wrapping_mul(31) + k as u64)
            else {
                continue;
            };
            corrupted_runs += 1;
            let (_, errors, _) =
                parse_text_recovering(grammar, &analysis, &bad, start, NopHooks, 10_000)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{label}: recovery aborted (seed {seed}, k {k}): {e}\ninput: {bad:?}"
                        )
                    });
            assert!(
                errors.len() <= ERRORS_PER_SITE * applied + 2,
                "{label}: {} errors from {applied} corruption sites (seed {seed})\n\
                 input: {bad:?}",
                errors.len()
            );
        }
    }
    assert!(corrupted_runs > 0, "{label}: fuzz never produced a corrupted input");
}

#[test]
fn mini_grammars_survive_token_corruption() {
    let minis: &[(&str, &str, &str)] = &[
        (
            "stmtish",
            "p",
            r#"grammar M;
               p : st+ ;
               st : 'if' e 'then' st 'else' st 'end'
                  | 'print' e ';'
                  | ID '=' e ';'
                  ;
               e : t ('+' t)* ;
               t : ID | INT | '(' e ')' ;
               ID : [a-z]+ ;
               INT : [0-9]+ ;
               WS : [ \t\r\n]+ -> skip ;"#,
        ),
        (
            "recursive",
            "e",
            "grammar M; e : '(' e ')' | '[' e ']' | INT ; INT : [0-9]+ ; WS : [ ]+ -> skip ;",
        ),
        (
            "llk",
            "s",
            "grammar M; s : (A B C | A B D | A C)+ ; A:'a'; B:'b'; C:'c'; D:'d'; WS : [ ]+ -> skip ;",
        ),
    ];
    for (label, start, src) in minis {
        let g = apply_peg_mode(parse_grammar(src).expect("mini grammar parses"));
        fuzz_grammar(label, &g, start, 40, 8);
    }
}

#[test]
fn suite_grammars_survive_token_corruption() {
    for entry in llstar_suite::all() {
        let grammar = entry.load();
        fuzz_grammar(entry.name, &grammar, entry.start_rule, 10, 7);
    }
}
