//! Gauntlet mutation fuzzer with delta-debug reduction.
//!
//! Two mutation axes over the gauntlet grammars:
//!
//! - **Input mutation** — tokenize a small generated corpus file, apply
//!   token-level mutations (delete, duplicate, swap, replace with a
//!   token drawn from the input's own vocabulary), re-render, and run
//!   the mutant through the interpreter (linear and compiled dispatch)
//!   and the generated parser. The engines must agree on the verdict,
//!   the tree, and (between dispatch modes) the full trace stream —
//!   mutants are mostly *invalid* inputs, so this drills the error
//!   paths the in-language oracle corpus never reaches.
//! - **Grammar mutation** — textual edits of the grammar itself
//!   (alternative reorder, `?` removal, alternative duplication). Any
//!   mutant that still parses and analyzes is a fresh grammar the
//!   compiled-dispatch lowering has never seen; linear and compiled
//!   dispatch must stay byte-identical on it. (Generated parsers are
//!   not rebuilt per grammar mutant — a rustc run per mutant would
//!   dominate the suite; interpreter self-agreement is the property the
//!   mutation is aimed at.)
//!
//! On a disagreement the failing token sequence is ddmin-reduced to a
//! minimal sequence, written to `tests/golden/gauntlet/` (so CI uploads
//! it as an artifact), and the test fails naming the file. Previously
//! reduced cases are replayed by `golden_corpus_replays`.

use llstar::codegen::generate;
use llstar::core::GrammarAnalysis;
use llstar::grammar::Grammar;
use llstar::packrat::PackratParser;
use llstar::runtime::{JsonlSink, NopHooks, Parser, TokenStream};
use llstar_rng::Rng64;
use llstar_suite::gauntlet::{all, by_name, GauntletEntry};
use std::path::{Path, PathBuf};
use std::process::Command;

mod common;
use common::{compile_generated, fingerprint, load_grammar_source, repo_path, HashWriter};

const FUZZ_SEED: u64 = 0xF0225EED;
/// Input mutants per gauntlet grammar.
const INPUT_MUTANTS: usize = 48;
/// Base-input size for mutation (small: mutants drill error paths, not
/// throughput).
const BASE_BYTES: usize = 900;

// ---------------------------------------------------------------------
// Engine verdicts
// ---------------------------------------------------------------------

/// What one interpreter configuration said about an input: the verdict
/// line (`OK <tree fingerprint>` or `ERR <error display>`) plus a
/// fingerprint of the trace stream it emitted along the way.
fn interp_verdict(
    g: &Grammar,
    a: &GrammarAnalysis,
    start: &str,
    text: &str,
    compiled: bool,
) -> (String, String) {
    let scanner = g.lexer.build().expect("lexer builds");
    let tokens = match scanner.tokenize(text) {
        Ok(t) => t,
        Err(e) => return (format!("LEX {e}"), String::new()),
    };
    let mut jsonl = JsonlSink::new(HashWriter::new());
    let mut parser = Parser::new(g, a, TokenStream::new(tokens), NopHooks);
    parser.set_compiled_dispatch(compiled);
    parser.set_trace_sink(&mut jsonl);
    let verdict = match parser.parse_to_eof(start) {
        Ok(tree) => format!("OK {}", fingerprint(tree.to_sexpr(g, text).as_bytes())),
        Err(e) => format!("ERR {e}"),
    };
    drop(parser);
    let (hasher, err) = jsonl.into_inner();
    assert!(err.is_none(), "trace sink I/O error");
    (verdict, hasher.fingerprint())
}

/// Runs the generated parser on `text`; `OK <tree fingerprint>` or
/// `REJECT`.
fn generated_verdict(exe: &Path, scratch: &Path, text: &str) -> String {
    std::fs::write(scratch, text).expect("write mutant");
    let out = Command::new(exe).arg(scratch).output().expect("generated parser runs");
    if out.status.success() {
        let stdout = String::from_utf8_lossy(&out.stdout);
        format!("OK {}", stdout.lines().next().unwrap_or("").trim())
    } else {
        "REJECT".to_string()
    }
}

/// All cross-engine agreement checks for one input, as `Err(reason)` on
/// the first disagreement. Used both on fresh mutants and as the ddmin
/// failure predicate.
fn disagreement(
    g: &Grammar,
    a: &GrammarAnalysis,
    start: &str,
    exe: &Path,
    scratch: &Path,
    text: &str,
) -> Result<(), String> {
    let (lin, lin_trace) = interp_verdict(g, a, start, text, false);
    let (com, com_trace) = interp_verdict(g, a, start, text, true);
    if lin != com {
        return Err(format!("dispatch verdicts differ: linear={lin} compiled={com}"));
    }
    if lin_trace != com_trace {
        return Err(format!("dispatch traces differ: linear={lin_trace} compiled={com_trace}"));
    }
    let gen = generated_verdict(exe, scratch, text);
    match (lin.starts_with("OK "), gen.starts_with("OK ")) {
        (true, true) => {
            if lin != gen {
                return Err(format!("generated tree differs: interp={lin} generated={gen}"));
            }
        }
        (true, false) => return Err(format!("interpreter accepts ({lin}) but generated rejects")),
        (false, true) => return Err(format!("interpreter rejects ({lin}) but generated accepts")),
        // Both reject: message formats differ by design; verdict parity
        // is the property.
        (false, false) => {}
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Token-level mutation + ddmin
// ---------------------------------------------------------------------

/// Slices an input into its token texts (EOF excluded). Space-joining
/// these re-lexes to the same token sequence for all three gauntlet
/// lexers (strings and comments are single tokens; no two-char operator
/// can form across a space).
fn token_texts(g: &Grammar, text: &str) -> Vec<String> {
    let scanner = g.lexer.build().expect("lexer builds");
    scanner
        .tokenize(text)
        .expect("base input lexes")
        .iter()
        .filter(|t| !t.ttype.is_eof())
        .map(|t| text[t.span.start..t.span.end].to_string())
        .collect()
}

fn render(tokens: &[String]) -> String {
    tokens.join(" ")
}

/// Applies 1–3 random token-level mutations.
fn mutate(tokens: &[String], rng: &mut Rng64) -> Vec<String> {
    let mut out = tokens.to_vec();
    for _ in 0..rng.gen_range(1..4usize) {
        if out.len() < 2 {
            break;
        }
        let i = rng.gen_range(0..out.len());
        match rng.gen_range(0..4u32) {
            0 => {
                out.remove(i);
            }
            1 => {
                let t = out[i].clone();
                out.insert(i, t);
            }
            2 => {
                let j = rng.gen_range(0..out.len());
                out.swap(i, j);
            }
            _ => {
                let j = rng.gen_range(0..tokens.len());
                out[i] = tokens[j].clone();
            }
        }
    }
    out
}

/// Classic ddmin over the token sequence: finds a (1-minimal up to
/// chunk granularity) subsequence on which `fails` still holds.
fn ddmin(tokens: Vec<String>, fails: &mut dyn FnMut(&[String]) -> bool) -> Vec<String> {
    let mut cur = tokens;
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut i = 0usize;
        while i * chunk < cur.len() {
            let mut cand: Vec<String> = Vec::with_capacity(cur.len().saturating_sub(chunk));
            cand.extend_from_slice(&cur[..i * chunk]);
            cand.extend_from_slice(&cur[((i + 1) * chunk).min(cur.len())..]);
            if !cand.is_empty() && fails(&cand) {
                cur = cand;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            i += 1;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

/// Reduces a failing mutant and records it under `tests/golden/gauntlet/`
/// before panicking, so the case is preserved (and uploaded by CI) even
/// though the test run dies.
fn reduce_and_record(
    g: &Grammar,
    a: &GrammarAnalysis,
    entry: &GauntletEntry,
    exe: &Path,
    scratch: &Path,
    mutant: Vec<String>,
    reason: &str,
) -> ! {
    let start = entry.start_rule;
    let mut fails =
        |cand: &[String]| disagreement(g, a, start, exe, scratch, &render(cand)).is_err();
    let minimal = ddmin(mutant, &mut fails);
    let text = render(&minimal);
    let slug = fingerprint(text.as_bytes());
    let slug = &slug[4..12]; // first 8 hash hex digits
    let path = repo_path(&format!("tests/golden/gauntlet/{}--diff--{slug}.txt", entry.name));
    std::fs::write(&path, format!("{text}\n")).expect("write reduced case");
    panic!(
        "{}: engines disagreed ({reason}); ddmin-reduced to {} token(s), recorded at {}:\n{text}",
        entry.name,
        minimal.len(),
        path.display()
    );
}

// ---------------------------------------------------------------------
// Input-mutation fuzzing
// ---------------------------------------------------------------------

fn fuzz_inputs(name: &str) {
    let entry = by_name(name).expect("gauntlet grammar");
    let (g, a) = load_grammar_source(entry.source);
    let code = generate(&g, &a).expect("generation succeeds");
    let driver = r#"
fn fnv(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv={hash:016x}:len={}", bytes.len())
}

fn main() {
    let path = std::env::args().nth(1).expect("input file");
    let input = std::fs::read_to_string(&path).expect("readable");
    match parse(&input) {
        Ok(tree) => println!("{}", fnv(tree.to_sexpr(&input).as_bytes())),
        Err(e) => {
            println!("ERROR {e}");
            std::process::exit(1);
        }
    }
}
"#;
    let exe = compile_generated(&format!("fuzz_{name}"), &code, driver);
    let scratch = exe.with_file_name("mutant.txt");

    let mut rng = Rng64::seed_from_u64(FUZZ_SEED ^ fingerprint(name.as_bytes()).len() as u64);
    for base_seed in [1u64, 2] {
        let base = (entry.generate)(BASE_BYTES, FUZZ_SEED.wrapping_add(base_seed));
        let tokens = token_texts(&g, &base);
        // The un-mutated rendering must round-trip through every engine
        // (it is in-language), anchoring the mutation space.
        if let Err(reason) =
            disagreement(&g, &a, entry.start_rule, &exe, &scratch, &render(&tokens))
        {
            reduce_and_record(&g, &a, &entry, &exe, &scratch, tokens, &reason);
        }
        for _ in 0..INPUT_MUTANTS / 2 {
            let mutant = mutate(&tokens, &mut rng);
            if let Err(reason) =
                disagreement(&g, &a, entry.start_rule, &exe, &scratch, &render(&mutant))
            {
                reduce_and_record(&g, &a, &entry, &exe, &scratch, mutant, &reason);
            }
        }
    }
}

#[test]
fn java8_input_mutants_agree() {
    fuzz_inputs("java8");
}

#[test]
fn sql_input_mutants_agree() {
    fuzz_inputs("sql");
}

#[test]
fn json_input_mutants_agree() {
    fuzz_inputs("json");
}

// ---------------------------------------------------------------------
// Grammar-mutation fuzzing
// ---------------------------------------------------------------------

/// Textual grammar mutants: alternative reorder / `?` removal /
/// alternative duplication, applied per candidate line. Mutants that no
/// longer parse or analyze are skipped — any that survive are novel
/// grammars for the dispatch-table lowering.
fn grammar_mutants(source: &str) -> Vec<String> {
    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let is_rule = line.contains(" : ") && line.trim_end().ends_with(';');
        if !is_rule {
            continue;
        }
        if let Some((head, body)) = line.split_once(" : ") {
            let body = body.trim_end().trim_end_matches(';');
            let alts: Vec<&str> = body.split(" | ").collect();
            if alts.len() >= 2 {
                // Swap the first two alternatives.
                let mut swapped = alts.clone();
                swapped.swap(0, 1);
                let mut m = lines.clone();
                let newline = format!("{head} : {} ;", swapped.join(" | "));
                m[i] = &newline;
                out.push(m.join("\n"));
                // Duplicate the first alternative at the end.
                let mut dup = alts.clone();
                dup.push(alts[0]);
                let mut m = lines.clone();
                let newline = format!("{head} : {} ;", dup.join(" | "));
                m[i] = &newline;
                out.push(m.join("\n"));
            }
        }
        if line.contains("? ") {
            let mut m = lines.clone();
            let newline = line.replacen("? ", " ", 1);
            m[i] = &newline;
            out.push(m.join("\n"));
        }
    }
    out
}

#[test]
fn grammar_mutants_keep_dispatch_modes_identical() {
    for entry in all() {
        let mutants = grammar_mutants(entry.source);
        assert!(!mutants.is_empty(), "{}: no grammar mutants generated", entry.name);
        let mut tested = 0usize;
        for source in &mutants {
            // Skip mutants the grammar pipeline rejects.
            let Ok(parsed) = llstar::grammar::parse_grammar(source) else { continue };
            let g = llstar::grammar::apply_peg_mode(parsed);
            let a = llstar::core::analyze(&g);
            let start = entry.start_rule;
            if g.rule_by_name(start).is_none() {
                continue;
            }
            // Small corpus sample: in-language for the *original*
            // grammar; the mutant may reject it — both dispatch modes
            // must reject identically.
            for seed in [3u64, 4] {
                let text = (entry.generate)(400, FUZZ_SEED.wrapping_add(seed));
                let (lin, lin_trace) = interp_verdict(&g, &a, start, &text, false);
                let (com, com_trace) = interp_verdict(&g, &a, start, &text, true);
                assert_eq!(lin, com, "{}: dispatch verdicts differ on mutant grammar", entry.name);
                assert_eq!(
                    lin_trace, com_trace,
                    "{}: dispatch traces differ on mutant grammar",
                    entry.name
                );
            }
            tested += 1;
        }
        assert!(tested >= 3, "{}: only {tested} grammar mutants survived the pipeline", entry.name);
    }
}

// ---------------------------------------------------------------------
// Golden replay
// ---------------------------------------------------------------------

#[test]
fn golden_corpus_replays() {
    let dir = repo_path("tests/golden/gauntlet");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("golden gauntlet dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "golden gauntlet corpus is empty");
    for file in files {
        let stem = file.file_stem().and_then(|s| s.to_str()).expect("utf8 name");
        let mut parts = stem.split("--");
        let grammar = parts.next().expect("grammar prefix");
        let kind = parts.next().unwrap_or_else(|| panic!("{stem}: missing --accept--/--diff--"));
        let entry = by_name(grammar)
            .unwrap_or_else(|| panic!("{stem}: unknown gauntlet grammar {grammar:?}"));
        let (g, a) = load_grammar_source(entry.source);
        let text = std::fs::read_to_string(&file).expect("golden readable");
        let text = text.trim_end();

        // Dispatch modes agree on every golden.
        let (lin, lin_trace) = interp_verdict(&g, &a, entry.start_rule, text, false);
        let (com, com_trace) = interp_verdict(&g, &a, entry.start_rule, text, true);
        assert_eq!(lin, com, "{stem}: dispatch verdicts differ");
        assert_eq!(lin_trace, com_trace, "{stem}: dispatch traces differ");

        if kind == "accept" {
            // In-language regression inputs: interpreter and the packrat
            // baseline must both accept.
            assert!(lin.starts_with("OK "), "{stem}: interpreter rejected an accept golden: {lin}");
            let scanner = g.lexer.build().expect("lexer builds");
            let tokens = scanner.tokenize(text).expect("golden lexes");
            let mut packrat = PackratParser::new(&g, tokens);
            packrat.set_memoize(true);
            packrat
                .recognize(entry.start_rule)
                .unwrap_or_else(|e| panic!("{stem}: packrat rejected an accept golden: {e}"));
        }
    }
}
