//! Compiles and runs generated parsers: the generated code must be
//! accepted by `rustc` standalone and agree with the interpreter.

use llstar::codegen::generate;
use llstar::core::analyze;
use llstar::grammar::{apply_peg_mode, parse_grammar};
use llstar::runtime::{parse_text, NopHooks};
use std::path::PathBuf;
use std::process::Command;

const CALC: &str = r#"
grammar Calc;
expr : term (('+' | '-') term)* ;
term : factor (('*' | '/') factor)* ;
factor : INT | '(' expr ')' | '-' factor ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
"#;

const STAT: &str = r#"
grammar Stat;
options { backtrack = true; }
prog : stat* EOF ;
stat : typ ID '=' e ';' | ID '=' e ';' | e ';' ;
typ : 'int' | 'bool' ;
e : ID | INT ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ ]+ -> skip ;
"#;

/// Generates, writes, and compiles a parser plus a driver `main`;
/// returns the executable path.
fn build_generated(name: &str, grammar_src: &str, driver: &str) -> PathBuf {
    let g = apply_peg_mode(parse_grammar(grammar_src).expect("test grammar parses"));
    let a = analyze(&g);
    let code = generate(&g, &a).expect("generation succeeds");

    let dir = std::env::temp_dir().join(format!("llstar_codegen_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src_path = dir.join("parser_main.rs");
    let full = format!("{code}\n{driver}\n");
    std::fs::write(&src_path, full).expect("write generated source");

    let exe = dir.join("parser_main");
    let out = Command::new("rustc")
        .args(["--edition", "2021", "-O", "-o"])
        .arg(&exe)
        .arg(&src_path)
        .output()
        .expect("rustc runs");
    assert!(
        out.status.success(),
        "generated code failed to compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    exe
}

fn run_generated(exe: &PathBuf, input: &str) -> (bool, String) {
    let out = Command::new(exe).arg(input).output().expect("generated parser runs");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).trim().to_string())
}

const DRIVER: &str = r#"
fn main() {
    let input = std::env::args().nth(1).expect("input argument");
    match parse(&input) {
        Ok(tree) => {
            println!("{}", tree.to_sexpr(&input));
        }
        Err(e) => {
            println!("ERROR {e}");
            std::process::exit(1);
        }
    }
}
"#;

#[test]
fn generated_calculator_compiles_and_parses() {
    let exe = build_generated("calc", CALC, DRIVER);
    let (ok, sexpr) = run_generated(&exe, "1 + 2 * (3 - 4)");
    assert!(ok, "{sexpr}");
    assert_eq!(
        sexpr,
        r#"(expr (term (factor "1")) "+" (term (factor "2") "*" (factor "(" (expr (term (factor "3")) "-" (term (factor "4"))) ")")))"#
    );

    // Errors are reported with positions.
    let (ok, msg) = run_generated(&exe, "1 + + 2");
    assert!(!ok);
    assert!(msg.starts_with("ERROR line 1:"), "{msg}");
}

#[test]
fn generated_parser_agrees_with_interpreter() {
    let g = apply_peg_mode(parse_grammar(CALC).expect("grammar"));
    let a = analyze(&g);
    let exe = build_generated("agree", CALC, DRIVER);
    for input in ["42", "1+2+3", "2 * 3 + 4 * 5", "((((7))))", "-1 - -2", "1 +", ")(", "1 * * 2"] {
        let interp = parse_text(&g, &a, input, "expr", NopHooks);
        let (gen_ok, gen_out) = run_generated(&exe, input);
        assert_eq!(
            interp.is_ok(),
            gen_ok,
            "disagreement on {input:?}: interpreter {interp:?} vs generated {gen_out:?}"
        );
        if let Ok((tree, _)) = interp {
            assert_eq!(tree.to_sexpr(&g, input), gen_out, "tree mismatch on {input:?}");
        }
    }
}

#[test]
fn generated_backtracking_parser_works() {
    let exe = build_generated("stat", STAT, DRIVER);
    // `int x = 1;` is a declaration; `x = 1;` an assignment; `x;` an
    // expression statement — the PEG-mode decision resolves each.
    let (ok, sexpr) = run_generated(&exe, "int x = 1; x = 2; x;");
    assert!(ok, "{sexpr}");
    assert!(sexpr.contains("(typ \"int\")"), "{sexpr}");
    let (ok, _) = run_generated(&exe, "int = 1;");
    assert!(!ok, "missing identifier must fail");
}

#[test]
fn generated_java_parser_handles_generated_programs() {
    // Generate the full suite Java parser, compile it, and check it
    // accepts programs from the Java input generator (and agrees with
    // the interpreter's s-expression output).
    let entry = llstar_suite::by_name("Java").expect("suite grammar");
    let g = entry.load();
    let a = analyze(&g);
    let code = generate(&g, &a).expect("generation succeeds");

    let driver = r#"
fn main() {
    let path = std::env::args().nth(1).expect("input file");
    let input = std::fs::read_to_string(&path).expect("readable");
    match parse(&input) {
        Ok(tree) => println!("{}", tree.token_count()),
        Err(e) => {
            println!("ERROR {e}");
            std::process::exit(1);
        }
    }
}
"#;
    let dir = std::env::temp_dir().join(format!("llstar_codegen_java_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let src_path = dir.join("java_parser.rs");
    std::fs::write(&src_path, format!("{code}\n{driver}\n")).expect("write");
    let exe = dir.join("java_parser");
    let out = Command::new("rustc")
        .args(["--edition", "2021", "-O", "-o"])
        .arg(&exe)
        .arg(&src_path)
        .output()
        .expect("rustc runs");
    assert!(
        out.status.success(),
        "generated Java parser failed to compile:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for seed in [1u64, 7, 99] {
        let program = (entry.generate)(60, seed);
        let input_path = dir.join(format!("prog_{seed}.java"));
        std::fs::write(&input_path, &program).expect("write input");
        let out = Command::new(&exe).arg(&input_path).output().expect("parser runs");
        let stdout = String::from_utf8_lossy(&out.stdout).trim().to_string();
        assert!(out.status.success(), "seed {seed}: generated parser rejected:\n{stdout}");
        // Token counts agree with the interpreter.
        let (tree, _) = llstar::runtime::parse_text(
            &g,
            &a,
            &program,
            entry.start_rule,
            llstar::runtime::NopHooks,
        )
        .expect("interpreter parses");
        assert_eq!(stdout, tree.token_count().to_string(), "seed {seed}: token counts differ");
    }
}
