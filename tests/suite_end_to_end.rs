//! End-to-end integration: every suite grammar analyzes without errors
//! and parses its generated inputs with the LL(*) engine.

use llstar::core::analyze;
use llstar::runtime::{MapHooks, Parser, TokenStream};
use llstar_suite as suite;

/// Builds the hook table a suite grammar needs (currently only the C
/// grammar's `isTypeName` oracle).
fn hooks_for(entry: &suite::SuiteEntry, source: &str) -> MapHooks {
    let mut hooks = MapHooks::new();
    if entry.name == "RatsC" {
        let src = source.to_string();
        hooks
            .on_pred("isTypeName", move |ctx| suite::c::is_typedef_name(ctx.next_token.text(&src)));
    }
    hooks
}

fn end_to_end(name: &str, lines: usize, seed: u64) {
    let entry = suite::by_name(name).unwrap();
    let grammar = entry.load();
    let analysis = analyze(&grammar);
    let input = (entry.generate)(lines, seed);
    let scanner = grammar.lexer.build().unwrap_or_else(|e| panic!("{name}: {e}"));
    let tokens = scanner.tokenize(&input).unwrap_or_else(|e| panic!("{name}: {e}\n{input}"));
    let n_tokens = tokens.len();
    let hooks = hooks_for(&entry, &input);
    let mut parser = Parser::new(&grammar, &analysis, TokenStream::new(tokens), hooks);
    let tree = parser
        .parse_to_eof(entry.start_rule)
        .unwrap_or_else(|e| panic!("{name}: parse failed: {e}\n----\n{input}"));
    // Grammars ending in an explicit EOF element include the EOF leaf.
    let covered = tree.token_count();
    assert!(
        covered == n_tokens - 1 || covered == n_tokens,
        "{name}: tree covers {covered} of {n_tokens} tokens"
    );
    let stats = parser.stats();
    assert!(stats.total_events() > 0, "{name}: decisions were exercised");
}

#[test]
fn java_end_to_end() {
    end_to_end("Java", 120, 101);
}

#[test]
fn ratsc_end_to_end() {
    end_to_end("RatsC", 120, 102);
}

#[test]
fn ratsjava_end_to_end() {
    end_to_end("RatsJava", 120, 103);
}

#[test]
fn vb_end_to_end() {
    end_to_end("VB", 120, 104);
}

#[test]
fn sql_end_to_end() {
    end_to_end("SQL", 120, 105);
}

#[test]
fn csharp_end_to_end() {
    end_to_end("CSharp", 120, 106);
}

#[test]
fn multiple_seeds_parse() {
    for seed in 1..=5 {
        end_to_end("Java", 40, seed);
        end_to_end("SQL", 40, seed);
    }
}
