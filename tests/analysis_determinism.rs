//! Parallel analysis determinism: `analyze_with` must produce results
//! that are *byte-identical* under serialization no matter how many
//! worker threads run the per-decision subset constructions, and every
//! decision's warnings must arrive in the same order. This is the
//! contract that makes `--jobs` purely a wall-clock knob and lets the
//! analysis cache ignore how its contents were computed.

use llstar::core::{analyze_with, serialize_analysis, AnalysisOptions, GrammarAnalysis};
use llstar::grammar::{apply_peg_mode, parse_grammar, Grammar};
use llstar::runtime::{parse_text_traced, JsonlSink, NopHooks};
use std::path::PathBuf;

/// Thread counts to pit against the sequential baseline. `0` is the
/// "use available parallelism" default; the rest bracket typical core
/// counts, including oversubscription (more threads than decisions).
const THREAD_COUNTS: &[usize] = &[0, 2, 3, 4, 8];

fn analyze_at(grammar: &Grammar, threads: usize) -> GrammarAnalysis {
    let mut options = AnalysisOptions::from_grammar(grammar);
    options.threads = threads;
    analyze_with(grammar, &options)
}

/// Asserts sequential and parallel analyses of `grammar` agree, both as
/// serialized bytes and warning-by-warning.
fn assert_deterministic(label: &str, grammar: &Grammar) {
    let baseline = analyze_at(grammar, 1);
    let baseline_bytes = serialize_analysis(grammar, &baseline);
    for &threads in THREAD_COUNTS {
        let parallel = analyze_at(grammar, threads);
        assert_eq!(
            baseline_bytes,
            serialize_analysis(grammar, &parallel),
            "{label}: threads={threads} serialization differs from sequential"
        );
        assert_eq!(
            baseline.decisions.len(),
            parallel.decisions.len(),
            "{label}: threads={threads} decision count differs"
        );
        for (seq, par) in baseline.decisions.iter().zip(&parallel.decisions) {
            assert_eq!(
                seq.decision, par.decision,
                "{label}: threads={threads} decisions assembled out of order"
            );
            assert_eq!(
                seq.warnings, par.warnings,
                "{label}: threads={threads} warnings differ (or arrive reordered) \
                 at decision d{}",
                seq.decision.0
            );
        }
    }
}

fn repo_grammars() -> Vec<(String, Grammar)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("grammars");
    let mut out = Vec::new();
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("grammars/ directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "g"))
        .collect();
    paths.sort();
    for path in paths {
        let source = std::fs::read_to_string(&path).expect("read grammar");
        let grammar = apply_peg_mode(parse_grammar(&source).expect("grammar parses"));
        out.push((path.file_name().unwrap().to_string_lossy().to_string(), grammar));
    }
    out
}

#[test]
fn repo_grammars_analyze_identically_at_any_thread_count() {
    let grammars = repo_grammars();
    assert!(!grammars.is_empty(), "no grammars found under grammars/");
    for (name, grammar) in &grammars {
        assert_deterministic(name, grammar);
    }
}

#[test]
fn suite_grammars_analyze_identically_at_any_thread_count() {
    for entry in llstar_suite::all() {
        let grammar = entry.load();
        assert_deterministic(entry.name, &grammar);
    }
}

/// Traces the smoke input for `stem` against an analysis computed with
/// `threads` workers and returns the JSONL bytes the sink wrote.
fn trace_smoke(stem: &str, threads: usize) -> Vec<u8> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("grammars");
    let source = std::fs::read_to_string(dir.join(format!("{stem}.g"))).expect("read grammar");
    let input =
        std::fs::read_to_string(dir.join("smoke").join(format!("{stem}.txt"))).expect("read input");
    let grammar = apply_peg_mode(parse_grammar(&source).expect("grammar parses"));
    let analysis = analyze_at(&grammar, threads);
    let mut sink = JsonlSink::new(Vec::new());
    let start = grammar.start_rule().name.clone();
    parse_text_traced(&grammar, &analysis, &input, &start, NopHooks, &mut sink)
        .unwrap_or_else(|e| panic!("{stem}: smoke input failed to parse: {e}"));
    let (bytes, error) = sink.into_inner();
    assert!(error.is_none(), "{stem}: sink I/O error");
    assert!(!bytes.is_empty(), "{stem}: traced parse emitted no events");
    bytes
}

/// The determinism contract extends through the runtime: the same
/// grammar and input must yield a byte-identical JSONL event trace on
/// every run, no matter how many threads computed the DFAs the
/// predictor walks. (The serialized-analysis checks above already pin
/// the *construction* metrics across thread counts — the v2 format
/// embeds them — so this closes the loop on the *prediction* side.)
#[test]
fn prediction_traces_are_byte_identical_across_runs_and_thread_counts() {
    for stem in ["calculator", "config", "json", "paper_section2"] {
        let baseline = trace_smoke(stem, 1);
        for &threads in THREAD_COUNTS {
            assert_eq!(
                baseline,
                trace_smoke(stem, threads),
                "{stem}: trace differs when the analysis used threads={threads}"
            );
        }
        // And re-running identically is identical — no hidden
        // iteration-order or timing dependence in the events.
        assert_eq!(baseline, trace_smoke(stem, 1), "{stem}: trace differs between runs");
    }
}

#[test]
fn thread_count_exceeding_decisions_is_harmless() {
    // One decision, sixteen workers: fifteen spin down immediately and
    // the result still matches the sequential analysis.
    let g = apply_peg_mode(
        parse_grammar("grammar Tiny; s : A | B ; A:'a'; B:'b';").expect("grammar parses"),
    );
    let seq = serialize_analysis(&g, &analyze_at(&g, 1));
    let wide = serialize_analysis(&g, &analyze_at(&g, 16));
    assert_eq!(seq, wide);
}

/// One deliberately-corrupted variant of each smoke input, chosen to
/// exercise a different repair: a missing operand (no-viable), a
/// dropped '=' (token insertion), a doubled ',' (sync/deletion), and a
/// truncated declaration.
fn corrupted_smoke_input(stem: &str) -> String {
    match stem {
        "calculator" => "1 + * (3 - 4) / 5".to_string(),
        "config" => "[main]\nthreads 4 ;\nname = \"llstar\" ;\n".to_string(),
        "json" => "{\"name\": \"llstar\", \"tables\": [1, 2, , 4]}".to_string(),
        "paper_section2" => "unsigned unsigned int".to_string(),
        other => panic!("no corrupted variant for {other}"),
    }
}

fn recovery_trace_smoke(stem: &str, threads: usize) -> (Vec<u8>, String) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("grammars");
    let source = std::fs::read_to_string(dir.join(format!("{stem}.g"))).expect("read grammar");
    let input = corrupted_smoke_input(stem);
    let grammar = apply_peg_mode(parse_grammar(&source).expect("grammar parses"));
    let analysis = analyze_at(&grammar, threads);
    let mut sink = JsonlSink::new(Vec::new());
    let start = grammar.start_rule().name.clone();
    let (_, errors, _) = llstar::runtime::parse_text_recovering_traced(
        &grammar, &analysis, &input, &start, NopHooks, 100, &mut sink,
    )
    .unwrap_or_else(|e| panic!("{stem}: recovery parse aborted: {e}"));
    let (bytes, error) = sink.into_inner();
    assert!(error.is_none(), "{stem}: sink I/O error");
    let diags = llstar::runtime::Diagnostic::from_errors(&grammar, &errors);
    (bytes, llstar::runtime::diagnostics_jsonl(&diags))
}

/// Recovery is part of the determinism contract too: the repair
/// decisions (delete vs insert vs resync) depend only on the DFAs and
/// the token stream, so the recovery-event trace and the diagnostics
/// must be byte-identical regardless of the analysis thread count.
#[test]
fn recovery_traces_are_byte_identical_across_thread_counts() {
    let mut total_diag_lines = 0usize;
    for stem in ["calculator", "config", "json", "paper_section2"] {
        let (baseline_trace, baseline_diags) = recovery_trace_smoke(stem, 1);
        assert!(
            !baseline_diags.is_empty(),
            "{stem}: corrupted input produced no diagnostics — corruption is stale"
        );
        total_diag_lines += baseline_diags.lines().count();
        for &threads in THREAD_COUNTS {
            let (trace, diags) = recovery_trace_smoke(stem, threads);
            assert_eq!(
                baseline_trace, trace,
                "{stem}: recovery trace differs when the analysis used threads={threads}"
            );
            assert_eq!(
                baseline_diags, diags,
                "{stem}: diagnostics differ when the analysis used threads={threads}"
            );
        }
        // Re-running identically is identical.
        let (rerun_trace, rerun_diags) = recovery_trace_smoke(stem, 1);
        assert_eq!(baseline_trace, rerun_trace, "{stem}: trace differs between runs");
        assert_eq!(baseline_diags, rerun_diags, "{stem}: diagnostics differ between runs");
    }
    assert!(total_diag_lines >= 4, "expected at least one diagnostic per corrupted stem");
}
