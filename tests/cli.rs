//! End-to-end tests of the `llstar` command-line tool (the ANTLR-tool
//! experience): check, dfa, atn, generate, compile, and parse, including
//! the compile-once/parse-with-precomputed-DFAs workflow.

use std::path::PathBuf;
use std::process::Command;

const GRAMMAR: &str = r#"
grammar CliDemo;
s : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
expr : INT ;
ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
"#;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("llstar_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn llstar(args: &[&str]) -> (bool, String, String) {
    let exe = env!("CARGO_BIN_EXE_llstar");
    let out = Command::new(exe).args(args).output().expect("llstar runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

fn grammar_path() -> String {
    let path = workdir().join("demo.g");
    std::fs::write(&path, GRAMMAR).expect("write grammar");
    path.to_string_lossy().to_string()
}

#[test]
fn check_reports_decision_classes() {
    let g = grammar_path();
    let (ok, stdout, _) = llstar(&["check", &g]);
    assert!(ok);
    assert!(stdout.contains("grammar CliDemo"), "{stdout}");
    assert!(stdout.contains("cyclic"), "{stdout}");
}

#[test]
fn dfa_dumps_rule_machines() {
    let g = grammar_path();
    let (ok, stdout, _) = llstar(&["dfa", &g, "s"]);
    assert!(ok);
    assert!(stdout.contains("-'unsigned'->"), "{stdout}");
    assert!(stdout.contains("predict alt 3"), "{stdout}");
}

#[test]
fn atn_emits_dot() {
    let g = grammar_path();
    let (ok, stdout, _) = llstar(&["atn", &g]);
    assert!(ok);
    assert!(stdout.starts_with("digraph atn"), "{stdout}");
}

#[test]
fn generate_emits_rust() {
    let g = grammar_path();
    let (ok, stdout, _) = llstar(&["generate", &g]);
    assert!(ok);
    assert!(stdout.contains("pub fn parse_s"), "{stdout}");
}

#[test]
fn compile_then_parse_with_dfa_file() {
    let g = grammar_path();
    let dfa = workdir().join("demo.dfa").to_string_lossy().to_string();
    let (ok, _, stderr) = llstar(&["compile", &g, &dfa]);
    assert!(ok, "{stderr}");
    assert!(std::fs::read_to_string(&dfa).unwrap().starts_with("llstar-analysis v2"));

    let input = workdir().join("input.txt");
    std::fs::write(&input, "unsigned unsigned int counter").unwrap();
    let input = input.to_string_lossy().to_string();

    let (ok, plain, _) = llstar(&["parse", &g, "s", &input]);
    assert!(ok);
    let (ok, with_dfa, _) = llstar(&["parse", &g, "s", &input, "--dfa", &dfa]);
    assert!(ok);
    assert_eq!(plain, with_dfa, "precompiled DFAs must parse identically");
    assert!(plain.contains("\"counter\""), "{plain}");
}

#[test]
fn parse_failure_exits_nonzero_with_position() {
    let g = grammar_path();
    let input = workdir().join("bad.txt");
    std::fs::write(&input, "unsigned unsigned = ").unwrap();
    let (ok, _, stderr) = llstar(&["parse", &g, "s", &input.to_string_lossy()]);
    assert!(!ok);
    assert!(stderr.contains("error: line 1:"), "{stderr}");
}

#[test]
fn left_recursive_grammar_is_rejected_with_diagnostics() {
    let path = workdir().join("leftrec.g");
    std::fs::write(&path, "grammar L; e : e '+' INT | INT ; INT : [0-9]+ ;").unwrap();
    let (ok, _, stderr) = llstar(&["check", &path.to_string_lossy()]);
    assert!(!ok);
    assert!(stderr.contains("left recursion: e -> e"), "{stderr}");
}

#[test]
fn no_arguments_prints_usage() {
    let (ok, _, stderr) = llstar(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn shipped_grammar_files_check_clean() {
    let root = env!("CARGO_MANIFEST_DIR");
    for name in ["calculator.g", "json.g", "paper_section2.g", "config.g"] {
        let path = format!("{root}/grammars/{name}");
        let (ok, stdout, stderr) = llstar(&["check", &path]);
        assert!(ok, "{name}: {stderr}");
        assert!(stdout.contains("decision classes"), "{name}: {stdout}");
        assert!(
            !stdout.contains("DeadAlternative") && !stdout.contains("Ambiguity"),
            "{name} has warnings: {stdout}"
        );
    }
}

#[test]
fn check_with_cache_hits_on_second_run() {
    let g = grammar_path();
    let cache = workdir().join("cache_hit_dir");
    let _ = std::fs::remove_dir_all(&cache);
    let cache = cache.to_string_lossy().to_string();

    // Cold run: a miss that populates the cache and reports timing.
    let (ok, stdout, stderr) = llstar(&["check", &g, "--cache", &cache, "--jobs", "2"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("analysis cache: miss (no cache file)"), "{stderr}");
    assert!(stdout.contains("slowest decision:"), "{stdout}");

    // Warm run: reported as a hit, DFA construction skipped.
    let (ok, stdout, stderr) = llstar(&["check", &g, "--cache", &cache]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("analysis cache: hit"), "{stderr}");
    assert!(stdout.contains("analysis loaded from cache; DFA construction skipped"), "{stdout}");
    assert!(stdout.contains("decision classes"), "{stdout}");
}

#[test]
fn profile_prints_analysis_and_runtime_columns() {
    let g = grammar_path();
    let input = workdir().join("profile_input.txt");
    std::fs::write(&input, "unsigned unsigned int counter").unwrap();

    let (ok, stdout, stderr) = llstar(&["profile", &g, &input.to_string_lossy()]);
    assert!(ok, "{stderr}");
    // Static analysis columns…
    for col in ["closures", "configs", "states", "edges", "fallback"] {
        assert!(stdout.contains(col), "missing column {col:?}: {stdout}");
    }
    // …runtime columns fed by the trace…
    for col in ["events", "avg-k", "max-k"] {
        assert!(stdout.contains(col), "missing column {col:?}: {stdout}");
    }
    // …one row per decision-bearing rule plus the totals row.
    assert!(stdout.contains(" s "), "{stdout}");
    assert!(stdout.contains("total"), "{stdout}");
    assert!(stderr.contains("trace events"), "{stderr}");

    // Without an input the analysis half still prints, runtime shows "-".
    let (ok, stdout, stderr) = llstar(&["profile", &g]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("closures"), "{stdout}");
}

#[test]
fn profile_json_round_trips_and_is_deterministic() {
    use llstar::core::{AnalysisRecord, Json};
    use llstar::runtime::TraceEvent;

    let g = grammar_path();
    let input = workdir().join("profile_rt.txt");
    std::fs::write(&input, "unsigned unsigned int counter").unwrap();
    let input = input.to_string_lossy().to_string();
    let json_a = workdir().join("profile_a.jsonl").to_string_lossy().to_string();
    let json_b = workdir().join("profile_b.jsonl").to_string_lossy().to_string();

    let (ok, _, stderr) = llstar(&["profile", &g, &input, "--json", &json_a, "--jobs", "2"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("JSONL"), "{stderr}");
    let (ok, _, stderr) = llstar(&["profile", &g, &input, "--json", &json_b, "--jobs", "2"]);
    assert!(ok, "{stderr}");

    let a = std::fs::read_to_string(&json_a).unwrap();
    let b = std::fs::read_to_string(&json_b).unwrap();
    assert_eq!(a, b, "profile --json must be byte-deterministic across runs");

    // Every line parses back through the public APIs: analysis records
    // via AnalysisRecord::from_json, trace events via TraceEvent.
    let mut lines = a.lines();
    assert_eq!(
        lines.next(),
        Some("{\"type\":\"schema\",\"stream\":\"profile\",\"version\":1}"),
        "profile --json must start with its schema header"
    );
    let mut analysis_lines = 0usize;
    let mut event_lines = 0usize;
    for (i, line) in lines.enumerate() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        if v.get("type").and_then(Json::as_str) == Some("analysis") {
            let rec =
                AnalysisRecord::from_json(&v).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
            assert!(!rec.rule.is_empty());
            analysis_lines += 1;
        } else {
            let ev = TraceEvent::from_json(&v).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
            assert_eq!(ev.to_json(), line, "line {}: event does not re-serialize", i + 1);
            event_lines += 1;
        }
    }
    assert!(analysis_lines > 0, "no analysis records exported");
    assert!(event_lines > 0, "no trace events exported");
}

#[test]
fn verbose_check_reports_cache_metrics() {
    let g = grammar_path();
    let cache = workdir().join("cache_metrics_dir");
    let _ = std::fs::remove_dir_all(&cache);
    let cache = cache.to_string_lossy().to_string();

    let (ok, _, stderr) = llstar(&["check", &g, "--cache", &cache, "-v"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("cache metrics:"), "{stderr}");
    assert!(stderr.contains("1 lookups"), "{stderr}");
    assert!(stderr.contains("1 absent"), "{stderr}");

    let (ok, _, stderr) = llstar(&["check", &g, "--cache", &cache, "--verbose"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("1 hits"), "{stderr}");
}

#[test]
fn jobs_flag_does_not_change_compiled_dfas() {
    let g = grammar_path();
    let dir = workdir();
    let seq = dir.join("seq.dfa");
    let par = dir.join("par.dfa");
    let (ok, _, stderr) = llstar(&["compile", &g, &seq.to_string_lossy(), "--jobs", "1"]);
    assert!(ok, "{stderr}");
    let (ok, _, stderr) = llstar(&["compile", &g, &par.to_string_lossy(), "--jobs", "8"]);
    assert!(ok, "{stderr}");
    let seq = std::fs::read_to_string(seq).unwrap();
    let par = std::fs::read_to_string(par).unwrap();
    assert_eq!(seq, par, "--jobs changed the serialized analysis");
}

#[test]
fn bad_jobs_value_is_a_usage_error() {
    let g = grammar_path();
    let (ok, _, stderr) = llstar(&["check", &g, "--jobs", "lots"]);
    assert!(!ok);
    assert!(stderr.contains("--jobs"), "{stderr}");
}

#[test]
fn check_diagnostics_recovers_and_exports_jsonl() {
    let g = grammar_path();
    let dir = workdir();
    let input = dir.join("broken.txt");
    // Two corruption sites: a missing '=' and trailing junk.
    std::fs::write(&input, "a 1\n").expect("write input");
    let jsonl = dir.join("diag.jsonl");
    let (ok, stdout, stderr) = llstar(&[
        "check",
        &g,
        &input.to_string_lossy(),
        "--diagnostics",
        "--max-errors",
        "10",
        "--json",
        &jsonl.to_string_lossy(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("error:"), "{stdout}");
    assert!(stdout.contains("syntax error"), "{stdout}");
    assert!(stdout.contains("recovered"), "{stdout}");
    let exported = std::fs::read_to_string(&jsonl).expect("jsonl written");
    let mut lines = exported.lines();
    assert_eq!(
        lines.next(),
        Some("{\"type\":\"schema\",\"stream\":\"diagnostics\",\"version\":1}"),
        "diagnostics JSONL must start with its schema header"
    );
    let mut diagnostics = 0;
    for line in lines {
        assert!(line.starts_with("{\"type\":\"diagnostic\""), "{line}");
        diagnostics += 1;
    }
    assert!(diagnostics > 0, "diagnostics JSONL must not be empty");
}

#[test]
fn check_without_diagnostics_stays_strict() {
    let g = grammar_path();
    let dir = workdir();
    let input = dir.join("broken_strict.txt");
    std::fs::write(&input, "a 1\n").expect("write input");
    let (ok, _, stderr) = llstar(&["check", &g, &input.to_string_lossy()]);
    assert!(!ok, "strict check must fail on a syntax error");
    assert!(!stderr.is_empty());

    let clean = dir.join("clean.txt");
    std::fs::write(&clean, "a = 1\n").expect("write input");
    let (ok, stdout, stderr) = llstar(&["check", &g, &clean.to_string_lossy()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("parse ok"), "{stdout}");
}

#[test]
fn profile_with_diagnostics_reports_recovery_counters() {
    let g = grammar_path();
    let dir = workdir();
    let input = dir.join("broken_profile.txt");
    std::fs::write(&input, "a 1\n").expect("write input");
    let (ok, stdout, stderr) = llstar(&["profile", &g, &input.to_string_lossy(), "--diagnostics"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("recovery:"), "{stdout}");
    assert!(stdout.contains("diagnostics"), "{stdout}");
}

/// A corpus exercising only the first two alternatives of `s` — the
/// `'unsigned'* 'int' ID` / `'unsigned'* ID ID` declaration alts stay
/// deliberately uncovered.
fn partial_corpus() -> String {
    let dir = workdir().join("cov_partial");
    std::fs::create_dir_all(&dir).expect("corpus dir");
    std::fs::write(dir.join("a_ref.txt"), "counter").expect("write corpus");
    std::fs::write(dir.join("b_assign.txt"), "counter = 42").expect("write corpus");
    dir.to_string_lossy().to_string()
}

#[test]
fn coverage_reports_uncovered_alternatives() {
    let g = grammar_path();
    let corpus = partial_corpus();
    let (ok, stdout, stderr) = llstar(&["coverage", &g, &corpus]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("2/4 alternatives covered") || stdout.contains("UNCOVERED"),
        "{stdout}"
    );
    assert!(stdout.contains("// UNCOVERED"), "{stdout}");
    assert!(stdout.contains("decision"), "hotspot table missing:\n{stdout}");

    // The same corpus under --fail-uncovered is a CI failure that names
    // the dead alternatives.
    let (ok, _, stderr) = llstar(&["coverage", &g, &corpus, "--fail-uncovered"]);
    assert!(!ok, "--fail-uncovered must exit non-zero");
    assert!(stderr.contains("uncovered alternative"), "{stderr}");
    assert!(stderr.contains("s alt 3"), "{stderr}");
}

#[test]
fn coverage_json_is_versioned_and_round_trips() {
    use llstar::core::{CoverageMap, Json};

    let g = grammar_path();
    let corpus = partial_corpus();
    let json = workdir().join("cov_map.json").to_string_lossy().to_string();
    let (ok, _, stderr) = llstar(&["coverage", &g, &corpus, "--json", &json]);
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&json).unwrap();
    assert!(text.starts_with("{\"type\":\"coverage\",\"schema\":1,"), "{text}");
    let map = CoverageMap::from_json(&Json::parse(&text).expect("valid json"))
        .expect("coverage JSON round-trips");
    assert_eq!(map.files, 2);
    assert_eq!(map.uncovered_alts().len(), 2, "two declaration alts stay uncovered");

    // A future schema version is rejected with a clear error.
    let bumped = text.replacen("\"schema\":1", "\"schema\":99", 1);
    let err = CoverageMap::from_json(&Json::parse(&bumped).unwrap()).unwrap_err();
    assert!(err.contains("version 99"), "{err}");
}

#[test]
fn coverage_chrome_trace_has_valid_shape() {
    use llstar::core::Json;

    let g = grammar_path();
    let corpus = partial_corpus();
    let trace = workdir().join("cov_trace.json").to_string_lossy().to_string();
    let (ok, _, stderr) = llstar(&["coverage", &g, &corpus, "--chrome-trace", &trace]);
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&trace).unwrap();
    let doc = Json::parse(&text).expect("chrome trace is valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    assert!(!events.is_empty(), "chrome trace must not be empty");
    let (mut begins, mut ends) = (0usize, 0usize);
    for e in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing {key:?}: {text}");
        }
        match e.get("ph").and_then(Json::as_str) {
            Some("B") => begins += 1,
            Some("E") => ends += 1,
            Some("i") => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(begins, ends, "span begin/end events must balance");
}

#[test]
fn coverage_replays_recorded_jsonl() {
    let g = grammar_path();
    let dir = workdir();
    let input = dir.join("cov_replay_input.txt");
    std::fs::write(&input, "unsigned unsigned int counter").unwrap();
    let jsonl = dir.join("cov_replay.jsonl").to_string_lossy().to_string();
    let (ok, _, stderr) = llstar(&["profile", &g, &input.to_string_lossy(), "--json", &jsonl]);
    assert!(ok, "{stderr}");

    // Replaying the profile stream folds the recorded events; no live
    // parse happens, so timing columns degrade to "-".
    let (ok, stdout, stderr) = llstar(&["coverage", &g, &jsonl]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("replayed"), "{stderr}");
    assert!(stdout.contains("alternatives covered"), "{stdout}");

    // A stream stamped by a future writer is rejected, not mis-folded.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let bumped_path = dir.join("cov_replay_v99.jsonl");
    std::fs::write(&bumped_path, text.replacen("\"version\":1", "\"version\":99", 1)).unwrap();
    let (ok, _, stderr) = llstar(&["coverage", &g, &bumped_path.to_string_lossy()]);
    assert!(!ok, "future schema versions must be rejected");
    assert!(stderr.contains("version 99"), "{stderr}");
}

#[test]
fn metrics_reports_hot_decisions_table() {
    let g = grammar_path();
    let corpus = partial_corpus();
    let (ok, stdout, stderr) = llstar(&["metrics", &g, &corpus]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("parsed 2 corpus file(s)"), "{stderr}");
    assert!(stdout.contains("2 parses"), "{stdout}");
    assert!(stdout.contains("rule"), "hot-decision table missing:\n{stdout}");
    assert!(stdout.contains("p99-k"), "{stdout}");
    assert!(stdout.contains(" s"), "decision rows must name the rule:\n{stdout}");
}

#[test]
fn metrics_prometheus_output_validates() {
    let g = grammar_path();
    let corpus = partial_corpus();
    let (ok, stdout, stderr) = llstar(&["metrics", &g, &corpus, "--prometheus"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("# TYPE llstar_parses_total counter"), "{stdout}");
    assert!(stdout.contains("llstar_parses_total{"), "{stdout}");
    assert!(stdout.contains("engine=\"session\""), "{stdout}");

    // The tool's own exposition passes the tool's own validator.
    let path = workdir().join("metrics.prom");
    std::fs::write(&path, &stdout).unwrap();
    let (ok, stdout, stderr) = llstar(&["metrics", "--validate", &path.to_string_lossy()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("valid Prometheus exposition"), "{stdout}");

    // A corrupted exposition is rejected with the offending line.
    let broken = workdir().join("metrics_broken.prom");
    std::fs::write(&broken, "llstar_undeclared_total{x=\"1\"} 5\n").unwrap();
    let (ok, _, stderr) = llstar(&["metrics", "--validate", &broken.to_string_lossy()]);
    assert!(!ok, "invalid exposition must fail validation");
    assert!(stderr.contains("line 1"), "{stderr}");
}

#[test]
fn metrics_json_stream_feeds_watch() {
    let g = grammar_path();
    let corpus = partial_corpus();
    let jsonl = workdir().join("metrics_stream.jsonl").to_string_lossy().to_string();
    let (ok, _, stderr) = llstar(&["metrics", &g, &corpus, "--json", &jsonl]);
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&jsonl).unwrap();
    assert!(
        text.starts_with("{\"type\":\"schema\",\"stream\":\"metrics\",\"version\":1}"),
        "{text}"
    );
    assert!(text.contains("\"type\":\"metrics\""), "{text}");
    assert!(text.contains("\"latency-hist\""), "the CLI stream carries the timing tier: {text}");

    // One dashboard frame over the stream.
    let (ok, stdout, stderr) = llstar(&["watch", &jsonl, "--once", "--top", "3"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("llstar watch"), "{stdout}");
    assert!(stdout.contains("2 parses"), "{stdout}");
    assert!(stdout.contains("p99-k"), "{stdout}");

    // A stream stamped by a future writer is rejected, not mis-rendered.
    let bumped = workdir().join("metrics_stream_v99.jsonl");
    std::fs::write(&bumped, text.replacen("\"version\":1", "\"version\":99", 1)).unwrap();
    let (ok, _, stderr) = llstar(&["watch", &bumped.to_string_lossy(), "--once"]);
    assert!(!ok, "future schema versions must be rejected");
    assert!(stderr.contains("version 99"), "{stderr}");
}

#[test]
fn watch_once_fails_on_missing_file() {
    let missing = workdir().join("no_such_stream.jsonl");
    let (ok, _, stderr) = llstar(&["watch", &missing.to_string_lossy(), "--once"]);
    assert!(!ok, "missing stream must fail under --once");
    assert!(stderr.contains("no_such_stream"), "{stderr}");
}

#[test]
fn profile_sample_thins_the_trace() {
    let g = grammar_path();
    let dir = workdir();
    let input = dir.join("sample_input.txt");
    std::fs::write(&input, "unsigned unsigned int counter").unwrap();
    let input = input.to_string_lossy().to_string();

    let full = dir.join("profile_full.jsonl").to_string_lossy().to_string();
    let (ok, _, stderr) = llstar(&["profile", &g, &input, "--json", &full]);
    assert!(ok, "{stderr}");
    let sampled = dir.join("profile_sampled.jsonl").to_string_lossy().to_string();
    let (ok, _, stderr) = llstar(&["profile", &g, &input, "--json", &sampled, "--sample", "4"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("1 in 4 windows"), "{stderr}");

    let count = |path: &str| {
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .filter(|l| l.contains("\"predict-start\""))
            .count()
    };
    let (full_n, sampled_n) = (count(&full), count(&sampled));
    assert!(full_n > 1, "fixture input must exercise several predictions, got {full_n}");
    assert!(
        sampled_n < full_n,
        "sampling must thin the stream: {sampled_n} vs {full_n} prediction windows"
    );

    // The thinned stream still replays: whole windows are kept or
    // dropped, never split.
    let (ok, stdout, stderr) = llstar(&["coverage", &g, &sampled]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("alternatives covered"), "{stdout}");
}

#[test]
fn generate_metrics_emits_counters() {
    let g = grammar_path();
    let (ok, stdout, _) = llstar(&["generate", &g, "--metrics"]);
    assert!(ok);
    assert!(stdout.contains("pub struct Metrics"), "{stdout}");
    assert!(stdout.contains("pub met: Metrics"), "{stdout}");

    // Default output stays metrics-free: the counters are opt-in for
    // generated parsers (the interpreter is where they are always on).
    let (ok, stdout, _) = llstar(&["generate", &g]);
    assert!(ok);
    assert!(!stdout.contains("pub struct Metrics"), "{stdout}");
}
