//! Golden-diagnostics tests: each `grammars/smoke/broken/<g>.txt` input
//! carries deliberately seeded typos; recovering from them must produce
//! *exactly* the diagnostics checked in under `tests/golden/<g>.jsonl` —
//! same kinds, spans, and messages, byte for byte. This pins the whole
//! recovery pipeline (repair choice, resync sets, cascade suppression,
//! diagnostic rendering) against silent drift.
//!
//! To refresh a golden after an intentional change:
//!   cargo run --bin llstar -- check grammars/<g>.g grammars/smoke/broken/<g>.txt \
//!     --diagnostics --json tests/golden/<g>.jsonl

use llstar::core::analyze;
use llstar::grammar::parse_grammar;
use llstar::runtime::{diagnostics_jsonl, parse_text_recovering, Diagnostic, NopHooks};
use std::path::Path;

const STEMS: &[&str] = &["calculator", "config", "json", "paper_section2"];

fn repo_path(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn diagnostics_for(stem: &str) -> Vec<Diagnostic> {
    let grammar_src = std::fs::read_to_string(repo_path(&format!("grammars/{stem}.g")))
        .expect("grammar file readable");
    let input = std::fs::read_to_string(repo_path(&format!("grammars/smoke/broken/{stem}.txt")))
        .expect("broken input readable");
    let grammar = parse_grammar(&grammar_src).expect("grammar parses");
    let analysis = analyze(&grammar);
    let start = grammar.start_rule().name.clone();
    let (_, errors, _) = parse_text_recovering(&grammar, &analysis, &input, &start, NopHooks, 10)
        .expect("recovery reaches EOF");
    Diagnostic::from_errors(&grammar, &errors)
}

#[test]
fn broken_smoke_inputs_match_golden_jsonl() {
    for stem in STEMS {
        let diags = diagnostics_for(stem);
        let got = diagnostics_jsonl(&diags);
        let golden = std::fs::read_to_string(repo_path(&format!("tests/golden/{stem}.jsonl")))
            .expect("golden file readable");
        assert_eq!(
            got, golden,
            "{stem}: diagnostics drifted from tests/golden/{stem}.jsonl\n\
             (refresh deliberately via `llstar check --diagnostics --json` if intended)"
        );
    }
}

#[test]
fn multi_error_inputs_surface_every_seeded_error_in_one_pass() {
    // The ISSUE acceptance bar: an input with N >= 3 seeded errors yields
    // all N diagnostics from a single parse, each with a correct span.
    let diags = diagnostics_for("config");
    assert!(
        diags.len() >= 3,
        "config broken input should surface >= 3 diagnostics, got {}",
        diags.len()
    );
    // Spans are strictly ordered and within the file: one left-to-right pass.
    let input = std::fs::read_to_string(repo_path("grammars/smoke/broken/config.txt")).unwrap();
    let mut last = 0usize;
    for d in &diags {
        assert!(d.start >= last, "diagnostics out of order: {} < {last}", d.start);
        assert!(d.end <= input.len(), "span past EOF: {}..{}", d.start, d.end);
        last = d.start;
    }
    // Each seeded typo site is distinct: three different lines are hit.
    let lines: std::collections::BTreeSet<u32> = diags.iter().map(|d| d.line).collect();
    assert!(lines.len() >= 3, "expected >= 3 distinct error lines, got {lines:?}");
}

#[test]
fn max_errors_cap_aborts_like_the_strict_engine() {
    // The config input seeds 5 errors; a cap of 2 must make the third
    // error fatal (recovery exhausts its budget and the parse aborts),
    // while a generous cap recovers all of them.
    let grammar_src = std::fs::read_to_string(repo_path("grammars/config.g")).unwrap();
    let input = std::fs::read_to_string(repo_path("grammars/smoke/broken/config.txt")).unwrap();
    let grammar = parse_grammar(&grammar_src).unwrap();
    let analysis = analyze(&grammar);
    let start = grammar.start_rule().name.clone();
    let capped = parse_text_recovering(&grammar, &analysis, &input, &start, NopHooks, 2);
    assert!(capped.is_err(), "max_errors=2 should abort on the third error");
    let (_, errors, _) = parse_text_recovering(&grammar, &analysis, &input, &start, NopHooks, 100)
        .expect("uncapped recovery completes");
    assert_eq!(errors.len(), 5, "config broken input seeds exactly 5 errors");
}
