//! The one-pass claim (Section 4): unlike Nijholt/Poplawski's two-pass
//! LL-regular parsers, LL(*) parses left-to-right in a single pass and
//! can therefore run over live streams, pulling tokens only as far as
//! lookahead and speculation actually need.

use llstar::core::analyze;
use llstar::grammar::{apply_peg_mode, parse_grammar};
use llstar::runtime::{NopHooks, Parser, TokenStream};
use llstar_lexer::Token;
use std::cell::Cell;
use std::rc::Rc;

const GRAMMAR: &str = r#"
grammar Repl;
stat : ID '=' expr ';' | 'print' expr ';' ;
expr : term ('+' term)* ;
term : ID | INT ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ ]+ -> skip ;
"#;

/// A counting lazy source over pre-lexed tokens, emulating an interactive
/// session that only produces tokens when the parser demands them.
fn counting_source(tokens: Vec<Token>) -> (impl FnMut() -> Option<Token>, Rc<Cell<usize>>) {
    let pulled = Rc::new(Cell::new(0usize));
    let p = pulled.clone();
    let mut i = 0;
    let source = move || {
        let t = tokens.get(i).copied();
        if t.is_some() {
            i += 1;
            p.set(p.get().max(i));
        }
        t
    };
    (source, pulled)
}

#[test]
fn parses_one_statement_without_reading_the_rest_of_the_stream() {
    let g = apply_peg_mode(parse_grammar(GRAMMAR).unwrap());
    let a = analyze(&g);
    let scanner = g.lexer.build().unwrap();
    // A long interactive session; the parser is asked for ONE statement.
    let session = "x = 1 + 2 ; print x ; y = 3 ; print y ; z = x + y ;";
    let tokens = scanner.tokenize(session).unwrap();
    let total = tokens.len();
    let (source, pulled) = counting_source(tokens);
    let mut parser = Parser::new(&g, &a, TokenStream::from_source(source), NopHooks);

    let tree = parser.parse("stat").expect("first statement parses");
    assert_eq!(tree.token_count(), 6, "x = 1 + 2 ;");
    assert!(
        pulled.get() < total / 2,
        "one-pass parsing must not read the whole stream: pulled {} of {total}",
        pulled.get()
    );
    // The stream is still usable for the next statement.
    let tree = parser.parse("stat").expect("second statement parses");
    assert_eq!(tree.token_count(), 3, "print x ;");
}

#[test]
fn lookahead_pulls_exactly_as_far_as_the_dfa_walks() {
    // A decision needing k=2 must pull 2 tokens before consuming any.
    let g = apply_peg_mode(parse_grammar(GRAMMAR).unwrap());
    let a = analyze(&g);
    let scanner = g.lexer.build().unwrap();
    let tokens = scanner.tokenize("a = b ;").unwrap();
    let (source, pulled) = counting_source(tokens);
    let mut parser = Parser::new(&g, &a, TokenStream::from_source(source), NopHooks);
    parser.parse("stat").unwrap();
    // The statement has 4 tokens + EOF; the decision needed k<=2 and
    // matching consumed all 4 with one token of pre-fill.
    assert!(pulled.get() <= 5, "pulled {}", pulled.get());
}

#[test]
fn speculation_over_streams_rewinds_within_the_buffer() {
    // PEG-mode decision speculates; the lazy stream must buffer and
    // rewind transparently.
    let src = r#"
        grammar S;
        options { backtrack = true; }
        s : e '!' | e '?' ;
        e : '(' e ')' | ID ;
        ID : [a-z]+ ;
        WS : [ ]+ -> skip ;
    "#;
    let g = apply_peg_mode(parse_grammar(src).unwrap());
    let a = analyze(&g);
    let scanner = g.lexer.build().unwrap();
    let tokens = scanner.tokenize("( ( ( x ) ) ) ?").unwrap();
    let (source, _) = counting_source(tokens);
    let mut parser = Parser::new(&g, &a, TokenStream::from_source(source), NopHooks);
    let tree = parser.parse_to_eof("s").expect("parses after speculation");
    assert_eq!(tree.token_count(), 8);
    assert!(parser.stats().total_backtrack_events() > 0, "the decision speculated");
}
