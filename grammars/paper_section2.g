// The grammar of the paper's Section 2 / Figure 1: one decision that
// needs k=1, k=2, and arbitrary lookahead. Run
//   cargo run --bin llstar -- dfa grammars/paper_section2.g s
// to see the Figure 1 DFA.
grammar PaperSection2;
s : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
expr : INT ;
ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
