// Gauntlet: a Java-8-scale statement/expression subset, run in PEG mode
// like the paper's Java 1.5 grammar. Beyond the suite's Java analog it
// adds try/catch/finally, enhanced-for, lambdas, method references,
// ternary/bitwise/shift operator strata, array creators with
// initializers, and compound assignment — the constructs that force
// deep lookahead and backtracking on realistic statement code.
grammar GauntletJava8;
options { backtrack = true; memoize = true; }

compilationUnit : packageDecl? importDecl* typeDecl* EOF ;
packageDecl : 'package' qualifiedName ';' ;
importDecl : 'import' 'static'? qualifiedName ('.' '*')? ';' ;
typeDecl : classDecl | interfaceDecl | enumDecl ;
classDecl
    : modifier* 'class' ID ('extends' qualifiedName)?
      ('implements' qualifiedName (',' qualifiedName)*)? classBody ;
interfaceDecl : modifier* 'interface' ID ('extends' qualifiedName)? classBody ;
enumDecl : modifier* 'enum' ID '{' ID (',' ID)* (';' member*)? '}' ;
classBody : '{' member* '}' ;
member : fieldDecl | methodDecl | ctorDecl | classDecl | initBlock ;
initBlock : 'static'? block ;
fieldDecl : modifier* typ varDeclarator (',' varDeclarator)* ';' ;
varDeclarator : ID ('[' ']')* ('=' varInit)? ;
varInit : expression | arrayInit ;
arrayInit : '{' (varInit (',' varInit)*)? ','? '}' ;
methodDecl
    : modifier* ('void' | typ) ID '(' params? ')' ('throws' qualifiedName (',' qualifiedName)*)? (block | ';') ;
ctorDecl : modifier* ID '(' params? ')' block ;
params : param (',' param)* ;
param : 'final'? typ '...'? ID ('[' ']')* ;
modifier
    : 'public' | 'private' | 'protected' | 'static' | 'final'
    | 'abstract' | 'synchronized' | 'native' | 'transient' | 'volatile' | 'strictfp'
    ;
qualifiedName : ID ('.' ID)* ;
typ : (qualifiedName | primitiveType) ('[' ']')* ;
primitiveType : 'int' | 'boolean' | 'char' | 'byte' | 'short' | 'long' | 'float' | 'double' ;

block : '{' statement* '}' ;
statement
    : block
    | 'if' parExpression statement ('else' statement)?
    | 'for' '(' typ ID ':' expression ')' statement
    | 'for' '(' forInit? ';' expression? ';' expressionList? ')' statement
    | 'while' parExpression statement
    | 'do' statement 'while' parExpression ';'
    | 'try' block (catchClause+ finallyClause? | finallyClause)
    | 'switch' parExpression '{' switchCase* '}'
    | 'synchronized' parExpression block
    | 'return' expression? ';'
    | 'throw' expression ';'
    | 'break' ';'
    | 'continue' ';'
    | 'assert' expression (':' expression)? ';'
    | localVarDecl ';'
    | expression ';'
    | ';'
    ;
catchClause : 'catch' '(' qualifiedName ('|' qualifiedName)* ID ')' block ;
finallyClause : 'finally' block ;
switchCase : ('case' expression | 'default') ':' statement* ;
forInit : localVarDecl | expressionList ;
localVarDecl : 'final'? typ varDeclarator (',' varDeclarator)* ;
parExpression : '(' expression ')' ;
expressionList : expression (',' expression)* ;

expression : lambda | conditional (assignOp expression)? ;
assignOp
    : '=' | '+=' | '-=' | '*=' | '/=' | '%='
    | '&=' | '|=' | '^=' | '<<=' | '>>=' | '>>>='
    ;
lambda : lambdaParams '->' lambdaBody ;
lambdaParams : ID | '(' ')' | '(' ID (',' ID)* ')' ;
lambdaBody : block | expression ;
conditional : logicalOr ('?' expression ':' conditional)? ;
logicalOr : logicalAnd ('||' logicalAnd)* ;
logicalAnd : bitOr ('&&' bitOr)* ;
bitOr : bitXor ('|' bitXor)* ;
bitXor : bitAnd ('^' bitAnd)* ;
bitAnd : equality ('&' equality)* ;
equality : relational (('==' | '!=') relational)* ;
relational : shift (('<' | '>' | '<=' | '>=') shift | 'instanceof' typ)* ;
shift : additive (('<<' | '>>' | '>>>') additive)* ;
additive : multiplicative (('+' | '-') multiplicative)* ;
multiplicative : unary (('*' | '/' | '%') unary)* ;
unary
    : ('!' | '~' | '-' | '+' | '++' | '--') unary
    | ('(' primitiveType ')')=> '(' primitiveType ')' unary
    | postfix
    ;
postfix : primary postfixOp* ;
postfixOp : '.' ID arguments? | '[' expression ']' | arguments | '++' | '--' ;
arguments : '(' expressionList? ')' ;
primary
    : parExpression
    | literal
    | 'new' creator
    | qualifiedName '::' ('new' | ID)
    | ID
    ;
creator
    : qualifiedName arguments classBody?
    | qualifiedName ('[' expression ']')+ ('[' ']')*
    | qualifiedName ('[' ']')+ arrayInit
    | primitiveType ('[' expression ']')+ ('[' ']')*
    | primitiveType ('[' ']')+ arrayInit
    ;
literal
    : INT | FLOAT | STRING | CHARLIT
    | 'true' | 'false' | 'null' | 'this' | 'super'
    ;

ID : [a-zA-Z_$] [a-zA-Z0-9_$]* ;
FLOAT : [0-9]+ '.' [0-9]+ ([fFdD])? | [0-9]+ [fFdD] ;
INT : '0x' [0-9a-fA-F]+ ([lL])? | [0-9]+ ([lL])? ;
STRING : '"' (~["\\\n] | '\\' .)* '"' ;
CHARLIT : '\'' (~['\\\n] | '\\' .) '\'' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '//' (~[\n])* -> skip ;
COMMENT : '/*' ((~[*])* '*'+ ~[*/])* (~[*])* '*'+ '/' -> skip ;
