// Gauntlet: a SQL SELECT/DDL subset shaped like a warehouse workload —
// WITH-clause CTEs, UNION chains, joins, correlated EXISTS/IN
// subqueries, CASE expressions, and a DDL surface (CREATE TABLE with
// column and table constraints, views, indexes, ALTER, DROP). Like the
// paper's TSQL grammar, almost every decision is keyword-dispatched
// LL(1); manual syntactic predicates disambiguate parenthesized
// subqueries from parenthesized expressions.
grammar GauntletSql;

script : stmt* EOF ;
stmt
    : withSelect ';'
    | createTable ';'
    | createView ';'
    | createIndex ';'
    | alterTable ';'
    | dropStmt ';'
    ;

withSelect : withClause? selectStmt ;
withClause : 'with' cte (',' cte)* ;
cte : ID ('(' columnList ')')? 'as' '(' selectStmt ')' ;

selectStmt : selectCore (('union' 'all'? | 'intersect' | 'except') selectCore)* orderByClause? limitClause? ;
selectCore
    : 'select' ('distinct' | 'all')? selectList
      ('from' tableSource joinClause*)?
      whereClause? groupByClause? havingClause?
    ;
selectList : '*' | selectItem (',' selectItem)* ;
// `ID '.' '*'` must precede the expression alternative: under PEG
// ordered choice an expression would capture the bare `ID` prefix of
// `t.*` and strand the `.` (the LL(*) DFA is order-insensitive here).
selectItem : ID '.' '*' | expr ('as'? ID)? ;
tableSource : tableName ('as'? ID)? | '(' selectStmt ')' ('as'? ID)? ;
tableName : ID ('.' ID)* ;
joinClause
    : ('inner' | 'left' 'outer'? | 'right' 'outer'? | 'full' 'outer'? | 'cross')? 'join'
      tableSource ('on' expr)?
    ;
whereClause : 'where' expr ;
groupByClause : 'group' 'by' expr (',' expr)* ;
havingClause : 'having' expr ;
orderByClause : 'order' 'by' orderItem (',' orderItem)* ;
orderItem : expr ('asc' | 'desc')? ('nulls' ('first' | 'last'))? ;
limitClause : 'limit' INT ('offset' INT)? ;

createTable
    : 'create' 'table' ('if' 'not' 'exists')? tableName
      '(' tableElement (',' tableElement)* ')'
    ;
tableElement : tableConstraint | columnDef ;
columnDef : ID typeName columnOption* ;
typeName
    : ('int' | 'bigint' | 'smallint' | 'float' | 'real' | 'bit' | 'date' | 'timestamp' | 'text' | 'blob')
    | ('varchar' | 'char' | 'decimal' | 'numeric') ('(' INT (',' INT)? ')')?
    ;
columnOption
    : 'not' 'null'
    | 'null'
    | 'primary' 'key'
    | 'unique'
    | 'default' literal
    | 'references' tableName ('(' ID ')')?
    | 'check' '(' expr ')'
    ;
tableConstraint
    : 'primary' 'key' '(' columnList ')'
    | 'unique' '(' columnList ')'
    | 'foreign' 'key' '(' columnList ')' 'references' tableName ('(' columnList ')')?
    | 'check' '(' expr ')'
    ;
columnList : ID (',' ID)* ;
createView : 'create' 'view' tableName ('(' columnList ')')? 'as' withSelect ;
createIndex : 'create' 'unique'? 'index' ('if' 'not' 'exists')? ID 'on' tableName '(' orderItem (',' orderItem)* ')' ;
alterTable
    : 'alter' 'table' tableName
      ( 'add' 'column'? columnDef
      | 'drop' 'column'? ID
      | 'rename' ('to' ID | 'column'? ID 'to' ID)
      )
    ;
dropStmt : 'drop' ('table' | 'view' | 'index') ('if' 'exists')? tableName ;

expr : orExpr ;
orExpr : andExpr ('or' andExpr)* ;
andExpr : notExpr ('and' notExpr)* ;
notExpr : 'not' notExpr | comparison ;
comparison
    : addExpr
      ( ('=' | '<>' | '!=' | '<' | '>' | '<=' | '>=') addExpr
      | 'not'? 'between' addExpr 'and' addExpr
      | 'not'? 'like' STRING
      | 'not'? 'in' '(' (('select')=> selectStmt | exprList) ')'
      | 'is' 'not'? 'null'
      )?
    ;
addExpr : mulExpr (('+' | '-' | '||') mulExpr)* ;
mulExpr : unaryExpr (('*' | '/' | '%') unaryExpr)* ;
unaryExpr : '-' unaryExpr | primary ;
primary
    : literal
    | caseExpr
    | castExpr
    | 'exists' '(' selectStmt ')'
    | funcCall
    | columnRef
    | ('(' 'select')=> '(' selectStmt ')'
    | ('(' 'with')=> '(' withSelect ')'
    | '(' expr ')'
    ;
caseExpr : 'case' caseInput? ('when' expr 'then' expr)+ ('else' expr)? 'end' ;
caseInput : expr ;
castExpr : 'cast' '(' expr 'as' typeName ')' ;
funcCall
    : ('count' | 'sum' | 'avg' | 'min' | 'max') '(' ('distinct'? expr | '*') ')'
    | ('coalesce' | 'nullif' | 'substr' | 'lower' | 'upper' | 'abs' | 'round' | 'length') '(' exprList ')'
    ;
columnRef : ID ('.' ID)* ;
exprList : expr (',' expr)* ;
literal : INT | FLOAT | STRING | 'null' | 'true' | 'false' ;

ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
FLOAT : [0-9]+ '.' [0-9]+ ;
INT : [0-9]+ ;
STRING : '\'' (~['\n])* '\'' ;
WS : [ \t\r\n]+ -> skip ;
LINE_COMMENT : '--' (~[\n])* -> skip ;
