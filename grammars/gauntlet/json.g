// Gauntlet: production-shaped JSON (RFC 8259 value grammar, LL(1)
// throughout). The grammar itself is small; the gauntlet stresses it
// with MB-scale generated documents — deep nesting, long arrays,
// escape-heavy strings, and scientific-notation numbers.
grammar GauntletJson;

document : value ;
value : object | array | STRING | NUMBER | 'true' | 'false' | 'null' ;
object : '{' (pair (',' pair)*)? '}' ;
pair : STRING ':' value ;
array : '[' (value (',' value)*)? ']' ;

STRING : '"' (~["\\] | '\\' .)* '"' ;
NUMBER : '-'? [0-9]+ ('.' [0-9]+)? ([eE] [+\-]? [0-9]+)? ;
WS : [ \t\r\n]+ -> skip ;
