// Arithmetic expressions with precedence ladder.
// Try: cargo run --bin llstar -- parse grammars/calculator.g expr input.txt
grammar Calculator;
expr : term (('+' | '-') term)* ;
term : factor (('*' | '/') factor)* ;
factor : INT | FLOAT | '(' expr ')' | '-' factor ;
FLOAT : [0-9]+ '.' [0-9]+ ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
