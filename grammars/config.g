// A small INI-like configuration language (PEG mode demo).
grammar Config;
options { backtrack = true; }
file : entry* EOF ;
entry : section | assignment ;
section : '[' ID ']' ;
assignment : ID '=' value ';' ;
value : ID | NUMBER | STRING | 'true' | 'false' | list ;
list : '(' value (',' value)* ')' ;
ID : [a-zA-Z_] [a-zA-Z0-9_.]* ;
NUMBER : '-'? [0-9]+ ('.' [0-9]+)? ;
STRING : '"' (~["\\] | '\\' .)* '"' ;
WS : [ \t\r\n]+ -> skip ;
COMMENT : '#' (~[\n])* -> skip ;
