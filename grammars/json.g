// JSON (LL(1) throughout).
grammar Json;
value : object | array | STRING | NUMBER | 'true' | 'false' | 'null' ;
object : '{' (pair (',' pair)*)? '}' ;
pair : STRING ':' value ;
array : '[' (value (',' value)*)? ']' ;
STRING : '"' (~["\\] | '\\' .)* '"' ;
NUMBER : '-'? [0-9]+ ('.' [0-9]+)? ([eE] [+\-]? [0-9]+)? ;
WS : [ \t\r\n]+ -> skip ;
