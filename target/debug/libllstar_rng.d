/root/repo/target/debug/libllstar_rng.rlib: /root/repo/crates/rng/src/lib.rs
