/root/repo/target/debug/examples/streaming_repl-0dc8f4c837bea88a.d: examples/streaming_repl.rs Cargo.toml

/root/repo/target/debug/examples/libstreaming_repl-0dc8f4c837bea88a.rmeta: examples/streaming_repl.rs Cargo.toml

examples/streaming_repl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
