/root/repo/target/debug/examples/calculator-c8e36d7d69a24ff4.d: examples/calculator.rs

/root/repo/target/debug/examples/calculator-c8e36d7d69a24ff4: examples/calculator.rs

examples/calculator.rs:
