/root/repo/target/debug/examples/json_reader-e8fc1003d096aeab.d: examples/json_reader.rs Cargo.toml

/root/repo/target/debug/examples/libjson_reader-e8fc1003d096aeab.rmeta: examples/json_reader.rs Cargo.toml

examples/json_reader.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
