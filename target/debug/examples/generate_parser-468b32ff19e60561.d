/root/repo/target/debug/examples/generate_parser-468b32ff19e60561.d: examples/generate_parser.rs Cargo.toml

/root/repo/target/debug/examples/libgenerate_parser-468b32ff19e60561.rmeta: examples/generate_parser.rs Cargo.toml

examples/generate_parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
