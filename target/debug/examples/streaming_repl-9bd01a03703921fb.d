/root/repo/target/debug/examples/streaming_repl-9bd01a03703921fb.d: examples/streaming_repl.rs

/root/repo/target/debug/examples/streaming_repl-9bd01a03703921fb: examples/streaming_repl.rs

examples/streaming_repl.rs:
