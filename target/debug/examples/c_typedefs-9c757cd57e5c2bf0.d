/root/repo/target/debug/examples/c_typedefs-9c757cd57e5c2bf0.d: examples/c_typedefs.rs Cargo.toml

/root/repo/target/debug/examples/libc_typedefs-9c757cd57e5c2bf0.rmeta: examples/c_typedefs.rs Cargo.toml

examples/c_typedefs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
