/root/repo/target/debug/examples/quickstart-109520213fe66dd4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-109520213fe66dd4: examples/quickstart.rs

examples/quickstart.rs:
