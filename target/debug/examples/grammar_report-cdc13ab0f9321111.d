/root/repo/target/debug/examples/grammar_report-cdc13ab0f9321111.d: examples/grammar_report.rs

/root/repo/target/debug/examples/grammar_report-cdc13ab0f9321111: examples/grammar_report.rs

examples/grammar_report.rs:
