/root/repo/target/debug/examples/calculator-c48e99fdccc1e565.d: examples/calculator.rs Cargo.toml

/root/repo/target/debug/examples/libcalculator-c48e99fdccc1e565.rmeta: examples/calculator.rs Cargo.toml

examples/calculator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
