/root/repo/target/debug/examples/generate_parser-79bafb2ac13781d4.d: examples/generate_parser.rs

/root/repo/target/debug/examples/generate_parser-79bafb2ac13781d4: examples/generate_parser.rs

examples/generate_parser.rs:
