/root/repo/target/debug/examples/c_typedefs-ee628f136408b152.d: examples/c_typedefs.rs

/root/repo/target/debug/examples/c_typedefs-ee628f136408b152: examples/c_typedefs.rs

examples/c_typedefs.rs:
