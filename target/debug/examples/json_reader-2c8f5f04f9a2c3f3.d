/root/repo/target/debug/examples/json_reader-2c8f5f04f9a2c3f3.d: examples/json_reader.rs

/root/repo/target/debug/examples/json_reader-2c8f5f04f9a2c3f3: examples/json_reader.rs

examples/json_reader.rs:
