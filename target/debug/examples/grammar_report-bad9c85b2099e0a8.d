/root/repo/target/debug/examples/grammar_report-bad9c85b2099e0a8.d: examples/grammar_report.rs Cargo.toml

/root/repo/target/debug/examples/libgrammar_report-bad9c85b2099e0a8.rmeta: examples/grammar_report.rs Cargo.toml

examples/grammar_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
