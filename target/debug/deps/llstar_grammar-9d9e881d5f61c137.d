/root/repo/target/debug/deps/llstar_grammar-9d9e881d5f61c137.d: crates/grammar/src/lib.rs crates/grammar/src/ast.rs crates/grammar/src/display.rs crates/grammar/src/leftrec.rs crates/grammar/src/meta.rs crates/grammar/src/pegmode.rs crates/grammar/src/validate.rs crates/grammar/src/vocab.rs

/root/repo/target/debug/deps/llstar_grammar-9d9e881d5f61c137: crates/grammar/src/lib.rs crates/grammar/src/ast.rs crates/grammar/src/display.rs crates/grammar/src/leftrec.rs crates/grammar/src/meta.rs crates/grammar/src/pegmode.rs crates/grammar/src/validate.rs crates/grammar/src/vocab.rs

crates/grammar/src/lib.rs:
crates/grammar/src/ast.rs:
crates/grammar/src/display.rs:
crates/grammar/src/leftrec.rs:
crates/grammar/src/meta.rs:
crates/grammar/src/pegmode.rs:
crates/grammar/src/validate.rs:
crates/grammar/src/vocab.rs:
