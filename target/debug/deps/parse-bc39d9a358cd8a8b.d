/root/repo/target/debug/deps/parse-bc39d9a358cd8a8b.d: crates/bench/benches/parse.rs

/root/repo/target/debug/deps/parse-bc39d9a358cd8a8b: crates/bench/benches/parse.rs

crates/bench/benches/parse.rs:
