/root/repo/target/debug/deps/streaming-1281f88d6163191e.d: tests/streaming.rs

/root/repo/target/debug/deps/streaming-1281f88d6163191e: tests/streaming.rs

tests/streaming.rs:
