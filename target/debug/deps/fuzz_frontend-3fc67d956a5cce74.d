/root/repo/target/debug/deps/fuzz_frontend-3fc67d956a5cce74.d: tests/fuzz_frontend.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_frontend-3fc67d956a5cce74.rmeta: tests/fuzz_frontend.rs Cargo.toml

tests/fuzz_frontend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
