/root/repo/target/debug/deps/report_tables-0c9e1587366a3083.d: crates/bench/src/bin/report_tables.rs Cargo.toml

/root/repo/target/debug/deps/libreport_tables-0c9e1587366a3083.rmeta: crates/bench/src/bin/report_tables.rs Cargo.toml

crates/bench/src/bin/report_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
