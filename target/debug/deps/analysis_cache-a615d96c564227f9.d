/root/repo/target/debug/deps/analysis_cache-a615d96c564227f9.d: tests/analysis_cache.rs

/root/repo/target/debug/deps/analysis_cache-a615d96c564227f9: tests/analysis_cache.rs

tests/analysis_cache.rs:
