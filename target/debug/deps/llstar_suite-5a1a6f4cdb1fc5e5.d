/root/repo/target/debug/deps/llstar_suite-5a1a6f4cdb1fc5e5.d: crates/suite/src/lib.rs crates/suite/src/c.rs crates/suite/src/common.rs crates/suite/src/csharp.rs crates/suite/src/derivation.rs crates/suite/src/java.rs crates/suite/src/ratsjava.rs crates/suite/src/sql.rs crates/suite/src/vb.rs

/root/repo/target/debug/deps/llstar_suite-5a1a6f4cdb1fc5e5: crates/suite/src/lib.rs crates/suite/src/c.rs crates/suite/src/common.rs crates/suite/src/csharp.rs crates/suite/src/derivation.rs crates/suite/src/java.rs crates/suite/src/ratsjava.rs crates/suite/src/sql.rs crates/suite/src/vb.rs

crates/suite/src/lib.rs:
crates/suite/src/c.rs:
crates/suite/src/common.rs:
crates/suite/src/csharp.rs:
crates/suite/src/derivation.rs:
crates/suite/src/java.rs:
crates/suite/src/ratsjava.rs:
crates/suite/src/sql.rs:
crates/suite/src/vb.rs:
