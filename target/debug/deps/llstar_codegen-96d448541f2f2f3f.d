/root/repo/target/debug/deps/llstar_codegen-96d448541f2f2f3f.d: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_codegen-96d448541f2f2f3f.rmeta: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs Cargo.toml

crates/codegen/src/lib.rs:
crates/codegen/src/lexer_gen.rs:
crates/codegen/src/parser_gen.rs:
crates/codegen/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
