/root/repo/target/debug/deps/cli-1eb4ba2050ce2747.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-1eb4ba2050ce2747.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_llstar=placeholder:llstar
# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
