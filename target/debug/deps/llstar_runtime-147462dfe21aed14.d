/root/repo/target/debug/deps/llstar_runtime-147462dfe21aed14.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/hooks.rs crates/runtime/src/parser.rs crates/runtime/src/stats.rs crates/runtime/src/stream.rs crates/runtime/src/tree.rs crates/runtime/src/visit.rs

/root/repo/target/debug/deps/libllstar_runtime-147462dfe21aed14.rlib: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/hooks.rs crates/runtime/src/parser.rs crates/runtime/src/stats.rs crates/runtime/src/stream.rs crates/runtime/src/tree.rs crates/runtime/src/visit.rs

/root/repo/target/debug/deps/libllstar_runtime-147462dfe21aed14.rmeta: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/hooks.rs crates/runtime/src/parser.rs crates/runtime/src/stats.rs crates/runtime/src/stream.rs crates/runtime/src/tree.rs crates/runtime/src/visit.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/hooks.rs:
crates/runtime/src/parser.rs:
crates/runtime/src/stats.rs:
crates/runtime/src/stream.rs:
crates/runtime/src/tree.rs:
crates/runtime/src/visit.rs:
