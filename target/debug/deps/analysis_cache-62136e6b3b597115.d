/root/repo/target/debug/deps/analysis_cache-62136e6b3b597115.d: tests/analysis_cache.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_cache-62136e6b3b597115.rmeta: tests/analysis_cache.rs Cargo.toml

tests/analysis_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
