/root/repo/target/debug/deps/llstar_bench-4d132a673bf91486.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_bench-4d132a673bf91486.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
