/root/repo/target/debug/deps/llstar_core-2bae8dc8475ef554.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/atn.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/dfa.rs crates/core/src/serialize.rs

/root/repo/target/debug/deps/libllstar_core-2bae8dc8475ef554.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/atn.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/dfa.rs crates/core/src/serialize.rs

/root/repo/target/debug/deps/libllstar_core-2bae8dc8475ef554.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/atn.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/dfa.rs crates/core/src/serialize.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/atn.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/dfa.rs:
crates/core/src/serialize.rs:
