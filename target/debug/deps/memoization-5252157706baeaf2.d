/root/repo/target/debug/deps/memoization-5252157706baeaf2.d: crates/bench/benches/memoization.rs Cargo.toml

/root/repo/target/debug/deps/libmemoization-5252157706baeaf2.rmeta: crates/bench/benches/memoization.rs Cargo.toml

crates/bench/benches/memoization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
