/root/repo/target/debug/deps/llk_blowup-00eff0ebfc7b8fe1.d: crates/bench/benches/llk_blowup.rs Cargo.toml

/root/repo/target/debug/deps/libllk_blowup-00eff0ebfc7b8fe1.rmeta: crates/bench/benches/llk_blowup.rs Cargo.toml

crates/bench/benches/llk_blowup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
