/root/repo/target/debug/deps/minimization-304ceb38641203d1.d: tests/minimization.rs Cargo.toml

/root/repo/target/debug/deps/libminimization-304ceb38641203d1.rmeta: tests/minimization.rs Cargo.toml

tests/minimization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
