/root/repo/target/debug/deps/llk_blowup-d13194ca80493358.d: crates/bench/benches/llk_blowup.rs

/root/repo/target/debug/deps/llk_blowup-d13194ca80493358: crates/bench/benches/llk_blowup.rs

crates/bench/benches/llk_blowup.rs:
