/root/repo/target/debug/deps/llstar_vs_packrat-c3b97cf2e65bf3e3.d: crates/bench/benches/llstar_vs_packrat.rs

/root/repo/target/debug/deps/llstar_vs_packrat-c3b97cf2e65bf3e3: crates/bench/benches/llstar_vs_packrat.rs

crates/bench/benches/llstar_vs_packrat.rs:
