/root/repo/target/debug/deps/llstar-b6553fd8450bc586.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllstar-b6553fd8450bc586.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
