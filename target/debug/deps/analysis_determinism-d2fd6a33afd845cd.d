/root/repo/target/debug/deps/analysis_determinism-d2fd6a33afd845cd.d: tests/analysis_determinism.rs

/root/repo/target/debug/deps/analysis_determinism-d2fd6a33afd845cd: tests/analysis_determinism.rs

tests/analysis_determinism.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
