/root/repo/target/debug/deps/llstar_suite-67fbe0cf1fe615bd.d: crates/suite/src/lib.rs crates/suite/src/c.rs crates/suite/src/common.rs crates/suite/src/csharp.rs crates/suite/src/derivation.rs crates/suite/src/java.rs crates/suite/src/ratsjava.rs crates/suite/src/sql.rs crates/suite/src/vb.rs

/root/repo/target/debug/deps/libllstar_suite-67fbe0cf1fe615bd.rlib: crates/suite/src/lib.rs crates/suite/src/c.rs crates/suite/src/common.rs crates/suite/src/csharp.rs crates/suite/src/derivation.rs crates/suite/src/java.rs crates/suite/src/ratsjava.rs crates/suite/src/sql.rs crates/suite/src/vb.rs

/root/repo/target/debug/deps/libllstar_suite-67fbe0cf1fe615bd.rmeta: crates/suite/src/lib.rs crates/suite/src/c.rs crates/suite/src/common.rs crates/suite/src/csharp.rs crates/suite/src/derivation.rs crates/suite/src/java.rs crates/suite/src/ratsjava.rs crates/suite/src/sql.rs crates/suite/src/vb.rs

crates/suite/src/lib.rs:
crates/suite/src/c.rs:
crates/suite/src/common.rs:
crates/suite/src/csharp.rs:
crates/suite/src/derivation.rs:
crates/suite/src/java.rs:
crates/suite/src/ratsjava.rs:
crates/suite/src/sql.rs:
crates/suite/src/vb.rs:
