/root/repo/target/debug/deps/codegen_compile-7cae6993bfcd2629.d: tests/codegen_compile.rs Cargo.toml

/root/repo/target/debug/deps/libcodegen_compile-7cae6993bfcd2629.rmeta: tests/codegen_compile.rs Cargo.toml

tests/codegen_compile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
