/root/repo/target/debug/deps/report_tables-099a8794e3e0c9cd.d: crates/bench/src/bin/report_tables.rs

/root/repo/target/debug/deps/report_tables-099a8794e3e0c9cd: crates/bench/src/bin/report_tables.rs

crates/bench/src/bin/report_tables.rs:
