/root/repo/target/debug/deps/error_reporting-62b07383f05e64be.d: tests/error_reporting.rs

/root/repo/target/debug/deps/error_reporting-62b07383f05e64be: tests/error_reporting.rs

tests/error_reporting.rs:
