/root/repo/target/debug/deps/analysis-af070756c9fd388c.d: crates/bench/benches/analysis.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis-af070756c9fd388c.rmeta: crates/bench/benches/analysis.rs Cargo.toml

crates/bench/benches/analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
