/root/repo/target/debug/deps/minimization-461a73e3c29c80a7.d: tests/minimization.rs

/root/repo/target/debug/deps/minimization-461a73e3c29c80a7: tests/minimization.rs

tests/minimization.rs:
