/root/repo/target/debug/deps/not_predicates-cbce4bfb07b08900.d: tests/not_predicates.rs Cargo.toml

/root/repo/target/debug/deps/libnot_predicates-cbce4bfb07b08900.rmeta: tests/not_predicates.rs Cargo.toml

tests/not_predicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
