/root/repo/target/debug/deps/llstar_vs_packrat-65a993346153dba7.d: crates/bench/benches/llstar_vs_packrat.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_vs_packrat-65a993346153dba7.rmeta: crates/bench/benches/llstar_vs_packrat.rs Cargo.toml

crates/bench/benches/llstar_vs_packrat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
