/root/repo/target/debug/deps/llstar_packrat-f7a768968bdcfe46.d: crates/packrat/src/lib.rs

/root/repo/target/debug/deps/libllstar_packrat-f7a768968bdcfe46.rlib: crates/packrat/src/lib.rs

/root/repo/target/debug/deps/libllstar_packrat-f7a768968bdcfe46.rmeta: crates/packrat/src/lib.rs

crates/packrat/src/lib.rs:
