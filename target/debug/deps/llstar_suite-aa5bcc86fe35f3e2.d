/root/repo/target/debug/deps/llstar_suite-aa5bcc86fe35f3e2.d: crates/suite/src/lib.rs crates/suite/src/c.rs crates/suite/src/common.rs crates/suite/src/csharp.rs crates/suite/src/derivation.rs crates/suite/src/java.rs crates/suite/src/ratsjava.rs crates/suite/src/sql.rs crates/suite/src/vb.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_suite-aa5bcc86fe35f3e2.rmeta: crates/suite/src/lib.rs crates/suite/src/c.rs crates/suite/src/common.rs crates/suite/src/csharp.rs crates/suite/src/derivation.rs crates/suite/src/java.rs crates/suite/src/ratsjava.rs crates/suite/src/sql.rs crates/suite/src/vb.rs Cargo.toml

crates/suite/src/lib.rs:
crates/suite/src/c.rs:
crates/suite/src/common.rs:
crates/suite/src/csharp.rs:
crates/suite/src/derivation.rs:
crates/suite/src/java.rs:
crates/suite/src/ratsjava.rs:
crates/suite/src/sql.rs:
crates/suite/src/vb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
