/root/repo/target/debug/deps/llstar_core-b3a3960cc9624b4f.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/atn.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/dfa.rs crates/core/src/serialize.rs

/root/repo/target/debug/deps/llstar_core-b3a3960cc9624b4f: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/atn.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/dfa.rs crates/core/src/serialize.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/atn.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/dfa.rs:
crates/core/src/serialize.rs:
