/root/repo/target/debug/deps/llstar-e89a8ece45de718c.d: src/bin/llstar.rs Cargo.toml

/root/repo/target/debug/deps/libllstar-e89a8ece45de718c.rmeta: src/bin/llstar.rs Cargo.toml

src/bin/llstar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
