/root/repo/target/debug/deps/llstar_rng-9418c6a5343187cf.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_rng-9418c6a5343187cf.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
