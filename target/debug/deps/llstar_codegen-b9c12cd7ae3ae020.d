/root/repo/target/debug/deps/llstar_codegen-b9c12cd7ae3ae020.d: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs

/root/repo/target/debug/deps/libllstar_codegen-b9c12cd7ae3ae020.rlib: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs

/root/repo/target/debug/deps/libllstar_codegen-b9c12cd7ae3ae020.rmeta: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs

crates/codegen/src/lib.rs:
crates/codegen/src/lexer_gen.rs:
crates/codegen/src/parser_gen.rs:
crates/codegen/src/writer.rs:
