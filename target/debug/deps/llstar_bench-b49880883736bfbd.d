/root/repo/target/debug/deps/llstar_bench-b49880883736bfbd.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libllstar_bench-b49880883736bfbd.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libllstar_bench-b49880883736bfbd.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
