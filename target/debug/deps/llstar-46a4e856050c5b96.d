/root/repo/target/debug/deps/llstar-46a4e856050c5b96.d: src/lib.rs

/root/repo/target/debug/deps/llstar-46a4e856050c5b96: src/lib.rs

src/lib.rs:
