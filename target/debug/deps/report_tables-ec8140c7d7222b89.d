/root/repo/target/debug/deps/report_tables-ec8140c7d7222b89.d: crates/bench/src/bin/report_tables.rs

/root/repo/target/debug/deps/report_tables-ec8140c7d7222b89: crates/bench/src/bin/report_tables.rs

crates/bench/src/bin/report_tables.rs:
