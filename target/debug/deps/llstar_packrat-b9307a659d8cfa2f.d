/root/repo/target/debug/deps/llstar_packrat-b9307a659d8cfa2f.d: crates/packrat/src/lib.rs

/root/repo/target/debug/deps/llstar_packrat-b9307a659d8cfa2f: crates/packrat/src/lib.rs

crates/packrat/src/lib.rs:
