/root/repo/target/debug/deps/llstar_rng-487221f26a2d6099.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/llstar_rng-487221f26a2d6099: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
