/root/repo/target/debug/deps/llstar_grammar-2c3a1a2320ca98a9.d: crates/grammar/src/lib.rs crates/grammar/src/ast.rs crates/grammar/src/display.rs crates/grammar/src/leftrec.rs crates/grammar/src/meta.rs crates/grammar/src/pegmode.rs crates/grammar/src/validate.rs crates/grammar/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_grammar-2c3a1a2320ca98a9.rmeta: crates/grammar/src/lib.rs crates/grammar/src/ast.rs crates/grammar/src/display.rs crates/grammar/src/leftrec.rs crates/grammar/src/meta.rs crates/grammar/src/pegmode.rs crates/grammar/src/validate.rs crates/grammar/src/vocab.rs Cargo.toml

crates/grammar/src/lib.rs:
crates/grammar/src/ast.rs:
crates/grammar/src/display.rs:
crates/grammar/src/leftrec.rs:
crates/grammar/src/meta.rs:
crates/grammar/src/pegmode.rs:
crates/grammar/src/validate.rs:
crates/grammar/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
