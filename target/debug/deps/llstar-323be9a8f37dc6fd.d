/root/repo/target/debug/deps/llstar-323be9a8f37dc6fd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllstar-323be9a8f37dc6fd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
