/root/repo/target/debug/deps/llstar_rng-22cff448a6a687b2.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libllstar_rng-22cff448a6a687b2.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libllstar_rng-22cff448a6a687b2.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
