/root/repo/target/debug/deps/analysis_scaling-d82c31b4f0766c14.d: crates/bench/benches/analysis_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_scaling-d82c31b4f0766c14.rmeta: crates/bench/benches/analysis_scaling.rs Cargo.toml

crates/bench/benches/analysis_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
