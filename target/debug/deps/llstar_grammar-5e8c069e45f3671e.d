/root/repo/target/debug/deps/llstar_grammar-5e8c069e45f3671e.d: crates/grammar/src/lib.rs crates/grammar/src/ast.rs crates/grammar/src/display.rs crates/grammar/src/leftrec.rs crates/grammar/src/meta.rs crates/grammar/src/pegmode.rs crates/grammar/src/validate.rs crates/grammar/src/vocab.rs

/root/repo/target/debug/deps/libllstar_grammar-5e8c069e45f3671e.rlib: crates/grammar/src/lib.rs crates/grammar/src/ast.rs crates/grammar/src/display.rs crates/grammar/src/leftrec.rs crates/grammar/src/meta.rs crates/grammar/src/pegmode.rs crates/grammar/src/validate.rs crates/grammar/src/vocab.rs

/root/repo/target/debug/deps/libllstar_grammar-5e8c069e45f3671e.rmeta: crates/grammar/src/lib.rs crates/grammar/src/ast.rs crates/grammar/src/display.rs crates/grammar/src/leftrec.rs crates/grammar/src/meta.rs crates/grammar/src/pegmode.rs crates/grammar/src/validate.rs crates/grammar/src/vocab.rs

crates/grammar/src/lib.rs:
crates/grammar/src/ast.rs:
crates/grammar/src/display.rs:
crates/grammar/src/leftrec.rs:
crates/grammar/src/meta.rs:
crates/grammar/src/pegmode.rs:
crates/grammar/src/validate.rs:
crates/grammar/src/vocab.rs:
