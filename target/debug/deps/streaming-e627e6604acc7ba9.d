/root/repo/target/debug/deps/streaming-e627e6604acc7ba9.d: tests/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming-e627e6604acc7ba9.rmeta: tests/streaming.rs Cargo.toml

tests/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
