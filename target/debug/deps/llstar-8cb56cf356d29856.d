/root/repo/target/debug/deps/llstar-8cb56cf356d29856.d: src/bin/llstar.rs

/root/repo/target/debug/deps/llstar-8cb56cf356d29856: src/bin/llstar.rs

src/bin/llstar.rs:
