/root/repo/target/debug/deps/llstar_bench-3178e072842169ed.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_bench-3178e072842169ed.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
