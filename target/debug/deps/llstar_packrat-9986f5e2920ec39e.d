/root/repo/target/debug/deps/llstar_packrat-9986f5e2920ec39e.d: crates/packrat/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_packrat-9986f5e2920ec39e.rmeta: crates/packrat/src/lib.rs Cargo.toml

crates/packrat/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
