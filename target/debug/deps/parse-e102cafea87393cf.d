/root/repo/target/debug/deps/parse-e102cafea87393cf.d: crates/bench/benches/parse.rs Cargo.toml

/root/repo/target/debug/deps/libparse-e102cafea87393cf.rmeta: crates/bench/benches/parse.rs Cargo.toml

crates/bench/benches/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
