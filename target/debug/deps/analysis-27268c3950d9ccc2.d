/root/repo/target/debug/deps/analysis-27268c3950d9ccc2.d: crates/bench/benches/analysis.rs

/root/repo/target/debug/deps/analysis-27268c3950d9ccc2: crates/bench/benches/analysis.rs

crates/bench/benches/analysis.rs:
