/root/repo/target/debug/deps/llstar_lexer-a46c9a6f064d37f6.d: crates/lexer/src/lib.rs crates/lexer/src/charclass.rs crates/lexer/src/dfa.rs crates/lexer/src/nfa.rs crates/lexer/src/regex.rs crates/lexer/src/scanner.rs crates/lexer/src/token.rs

/root/repo/target/debug/deps/libllstar_lexer-a46c9a6f064d37f6.rlib: crates/lexer/src/lib.rs crates/lexer/src/charclass.rs crates/lexer/src/dfa.rs crates/lexer/src/nfa.rs crates/lexer/src/regex.rs crates/lexer/src/scanner.rs crates/lexer/src/token.rs

/root/repo/target/debug/deps/libllstar_lexer-a46c9a6f064d37f6.rmeta: crates/lexer/src/lib.rs crates/lexer/src/charclass.rs crates/lexer/src/dfa.rs crates/lexer/src/nfa.rs crates/lexer/src/regex.rs crates/lexer/src/scanner.rs crates/lexer/src/token.rs

crates/lexer/src/lib.rs:
crates/lexer/src/charclass.rs:
crates/lexer/src/dfa.rs:
crates/lexer/src/nfa.rs:
crates/lexer/src/regex.rs:
crates/lexer/src/scanner.rs:
crates/lexer/src/token.rs:
