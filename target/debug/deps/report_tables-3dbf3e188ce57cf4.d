/root/repo/target/debug/deps/report_tables-3dbf3e188ce57cf4.d: crates/bench/src/bin/report_tables.rs Cargo.toml

/root/repo/target/debug/deps/libreport_tables-3dbf3e188ce57cf4.rmeta: crates/bench/src/bin/report_tables.rs Cargo.toml

crates/bench/src/bin/report_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
