/root/repo/target/debug/deps/analysis_determinism-4d8283c7ac24f830.d: tests/analysis_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_determinism-4d8283c7ac24f830.rmeta: tests/analysis_determinism.rs Cargo.toml

tests/analysis_determinism.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
