/root/repo/target/debug/deps/llstar-d5ff37b9a3c9a9fb.d: src/lib.rs

/root/repo/target/debug/deps/libllstar-d5ff37b9a3c9a9fb.rlib: src/lib.rs

/root/repo/target/debug/deps/libllstar-d5ff37b9a3c9a9fb.rmeta: src/lib.rs

src/lib.rs:
