/root/repo/target/debug/deps/llstar-a0c7a7c006b282bd.d: src/bin/llstar.rs

/root/repo/target/debug/deps/llstar-a0c7a7c006b282bd: src/bin/llstar.rs

src/bin/llstar.rs:
