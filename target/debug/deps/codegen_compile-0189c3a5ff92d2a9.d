/root/repo/target/debug/deps/codegen_compile-0189c3a5ff92d2a9.d: tests/codegen_compile.rs

/root/repo/target/debug/deps/codegen_compile-0189c3a5ff92d2a9: tests/codegen_compile.rs

tests/codegen_compile.rs:
