/root/repo/target/debug/deps/memoization-dc538ef991a6c374.d: crates/bench/benches/memoization.rs

/root/repo/target/debug/deps/memoization-dc538ef991a6c374: crates/bench/benches/memoization.rs

crates/bench/benches/memoization.rs:
