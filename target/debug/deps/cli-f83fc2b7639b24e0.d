/root/repo/target/debug/deps/cli-f83fc2b7639b24e0.d: tests/cli.rs

/root/repo/target/debug/deps/cli-f83fc2b7639b24e0: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_llstar=/root/repo/target/debug/llstar
# env-dep:CARGO_MANIFEST_DIR=/root/repo
