/root/repo/target/debug/deps/suite_end_to_end-35c197cce9ffecfa.d: tests/suite_end_to_end.rs

/root/repo/target/debug/deps/suite_end_to_end-35c197cce9ffecfa: tests/suite_end_to_end.rs

tests/suite_end_to_end.rs:
