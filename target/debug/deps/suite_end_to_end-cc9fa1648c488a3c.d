/root/repo/target/debug/deps/suite_end_to_end-cc9fa1648c488a3c.d: tests/suite_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_end_to_end-cc9fa1648c488a3c.rmeta: tests/suite_end_to_end.rs Cargo.toml

tests/suite_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
