/root/repo/target/debug/deps/llstar_runtime-88fee64d1f5ca571.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/hooks.rs crates/runtime/src/parser.rs crates/runtime/src/stats.rs crates/runtime/src/stream.rs crates/runtime/src/tree.rs crates/runtime/src/visit.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_runtime-88fee64d1f5ca571.rmeta: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/hooks.rs crates/runtime/src/parser.rs crates/runtime/src/stats.rs crates/runtime/src/stream.rs crates/runtime/src/tree.rs crates/runtime/src/visit.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/hooks.rs:
crates/runtime/src/parser.rs:
crates/runtime/src/stats.rs:
crates/runtime/src/stream.rs:
crates/runtime/src/tree.rs:
crates/runtime/src/visit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
