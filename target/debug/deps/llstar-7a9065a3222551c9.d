/root/repo/target/debug/deps/llstar-7a9065a3222551c9.d: src/bin/llstar.rs Cargo.toml

/root/repo/target/debug/deps/libllstar-7a9065a3222551c9.rmeta: src/bin/llstar.rs Cargo.toml

src/bin/llstar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
