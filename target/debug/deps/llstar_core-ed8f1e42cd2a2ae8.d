/root/repo/target/debug/deps/llstar_core-ed8f1e42cd2a2ae8.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/atn.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/dfa.rs crates/core/src/serialize.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_core-ed8f1e42cd2a2ae8.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/atn.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/dfa.rs crates/core/src/serialize.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/atn.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/dfa.rs:
crates/core/src/serialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
