/root/repo/target/debug/deps/llstar_lexer-d1172ce65539ead3.d: crates/lexer/src/lib.rs crates/lexer/src/charclass.rs crates/lexer/src/dfa.rs crates/lexer/src/nfa.rs crates/lexer/src/regex.rs crates/lexer/src/scanner.rs crates/lexer/src/token.rs

/root/repo/target/debug/deps/llstar_lexer-d1172ce65539ead3: crates/lexer/src/lib.rs crates/lexer/src/charclass.rs crates/lexer/src/dfa.rs crates/lexer/src/nfa.rs crates/lexer/src/regex.rs crates/lexer/src/scanner.rs crates/lexer/src/token.rs

crates/lexer/src/lib.rs:
crates/lexer/src/charclass.rs:
crates/lexer/src/dfa.rs:
crates/lexer/src/nfa.rs:
crates/lexer/src/regex.rs:
crates/lexer/src/scanner.rs:
crates/lexer/src/token.rs:
