/root/repo/target/debug/deps/not_predicates-80de7c810c21fb34.d: tests/not_predicates.rs

/root/repo/target/debug/deps/not_predicates-80de7c810c21fb34: tests/not_predicates.rs

tests/not_predicates.rs:
