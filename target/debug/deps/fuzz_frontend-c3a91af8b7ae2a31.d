/root/repo/target/debug/deps/fuzz_frontend-c3a91af8b7ae2a31.d: tests/fuzz_frontend.rs

/root/repo/target/debug/deps/fuzz_frontend-c3a91af8b7ae2a31: tests/fuzz_frontend.rs

tests/fuzz_frontend.rs:
