/root/repo/target/debug/deps/property_equivalence-5dc62b7048a9ced2.d: tests/property_equivalence.rs

/root/repo/target/debug/deps/property_equivalence-5dc62b7048a9ced2: tests/property_equivalence.rs

tests/property_equivalence.rs:
