/root/repo/target/debug/deps/analysis_scaling-8a90c95cd56ad6a4.d: crates/bench/benches/analysis_scaling.rs

/root/repo/target/debug/deps/analysis_scaling-8a90c95cd56ad6a4: crates/bench/benches/analysis_scaling.rs

crates/bench/benches/analysis_scaling.rs:
