/root/repo/target/debug/deps/llstar_runtime-d365b3dd2aa936fd.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/hooks.rs crates/runtime/src/parser.rs crates/runtime/src/stats.rs crates/runtime/src/stream.rs crates/runtime/src/tree.rs crates/runtime/src/visit.rs

/root/repo/target/debug/deps/llstar_runtime-d365b3dd2aa936fd: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/hooks.rs crates/runtime/src/parser.rs crates/runtime/src/stats.rs crates/runtime/src/stream.rs crates/runtime/src/tree.rs crates/runtime/src/visit.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/hooks.rs:
crates/runtime/src/parser.rs:
crates/runtime/src/stats.rs:
crates/runtime/src/stream.rs:
crates/runtime/src/tree.rs:
crates/runtime/src/visit.rs:
