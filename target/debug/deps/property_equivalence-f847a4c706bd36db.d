/root/repo/target/debug/deps/property_equivalence-f847a4c706bd36db.d: tests/property_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_equivalence-f847a4c706bd36db.rmeta: tests/property_equivalence.rs Cargo.toml

tests/property_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
