/root/repo/target/debug/deps/llstar_codegen-e1c685bca1d984a5.d: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_codegen-e1c685bca1d984a5.rmeta: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs Cargo.toml

crates/codegen/src/lib.rs:
crates/codegen/src/lexer_gen.rs:
crates/codegen/src/parser_gen.rs:
crates/codegen/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
