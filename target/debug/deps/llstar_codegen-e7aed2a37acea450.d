/root/repo/target/debug/deps/llstar_codegen-e7aed2a37acea450.d: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs

/root/repo/target/debug/deps/llstar_codegen-e7aed2a37acea450: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs

crates/codegen/src/lib.rs:
crates/codegen/src/lexer_gen.rs:
crates/codegen/src/parser_gen.rs:
crates/codegen/src/writer.rs:
