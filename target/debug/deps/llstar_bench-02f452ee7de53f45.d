/root/repo/target/debug/deps/llstar_bench-02f452ee7de53f45.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/llstar_bench-02f452ee7de53f45: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/harness.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/harness.rs:
crates/bench/src/report.rs:
