/root/repo/target/debug/deps/llstar_lexer-a5ea1a1916364bb7.d: crates/lexer/src/lib.rs crates/lexer/src/charclass.rs crates/lexer/src/dfa.rs crates/lexer/src/nfa.rs crates/lexer/src/regex.rs crates/lexer/src/scanner.rs crates/lexer/src/token.rs Cargo.toml

/root/repo/target/debug/deps/libllstar_lexer-a5ea1a1916364bb7.rmeta: crates/lexer/src/lib.rs crates/lexer/src/charclass.rs crates/lexer/src/dfa.rs crates/lexer/src/nfa.rs crates/lexer/src/regex.rs crates/lexer/src/scanner.rs crates/lexer/src/token.rs Cargo.toml

crates/lexer/src/lib.rs:
crates/lexer/src/charclass.rs:
crates/lexer/src/dfa.rs:
crates/lexer/src/nfa.rs:
crates/lexer/src/regex.rs:
crates/lexer/src/scanner.rs:
crates/lexer/src/token.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
