/root/repo/target/release/deps/llstar_core-1b212b3895641f65.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/atn.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/dfa.rs crates/core/src/serialize.rs

/root/repo/target/release/deps/libllstar_core-1b212b3895641f65.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/atn.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/dfa.rs crates/core/src/serialize.rs

/root/repo/target/release/deps/libllstar_core-1b212b3895641f65.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/atn.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/dfa.rs crates/core/src/serialize.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/atn.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/dfa.rs:
crates/core/src/serialize.rs:
