/root/repo/target/release/deps/llstar_packrat-a9fb863d3c4c9fb8.d: crates/packrat/src/lib.rs

/root/repo/target/release/deps/libllstar_packrat-a9fb863d3c4c9fb8.rlib: crates/packrat/src/lib.rs

/root/repo/target/release/deps/libllstar_packrat-a9fb863d3c4c9fb8.rmeta: crates/packrat/src/lib.rs

crates/packrat/src/lib.rs:
