/root/repo/target/release/deps/llstar_runtime-fe464fefd3c5f82e.d: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/hooks.rs crates/runtime/src/parser.rs crates/runtime/src/stats.rs crates/runtime/src/stream.rs crates/runtime/src/tree.rs crates/runtime/src/visit.rs

/root/repo/target/release/deps/libllstar_runtime-fe464fefd3c5f82e.rlib: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/hooks.rs crates/runtime/src/parser.rs crates/runtime/src/stats.rs crates/runtime/src/stream.rs crates/runtime/src/tree.rs crates/runtime/src/visit.rs

/root/repo/target/release/deps/libllstar_runtime-fe464fefd3c5f82e.rmeta: crates/runtime/src/lib.rs crates/runtime/src/error.rs crates/runtime/src/hooks.rs crates/runtime/src/parser.rs crates/runtime/src/stats.rs crates/runtime/src/stream.rs crates/runtime/src/tree.rs crates/runtime/src/visit.rs

crates/runtime/src/lib.rs:
crates/runtime/src/error.rs:
crates/runtime/src/hooks.rs:
crates/runtime/src/parser.rs:
crates/runtime/src/stats.rs:
crates/runtime/src/stream.rs:
crates/runtime/src/tree.rs:
crates/runtime/src/visit.rs:
