/root/repo/target/release/deps/llstar-2c05dbb9e39f47a8.d: src/lib.rs

/root/repo/target/release/deps/libllstar-2c05dbb9e39f47a8.rlib: src/lib.rs

/root/repo/target/release/deps/libllstar-2c05dbb9e39f47a8.rmeta: src/lib.rs

src/lib.rs:
