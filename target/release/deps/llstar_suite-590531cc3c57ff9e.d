/root/repo/target/release/deps/llstar_suite-590531cc3c57ff9e.d: crates/suite/src/lib.rs crates/suite/src/c.rs crates/suite/src/common.rs crates/suite/src/csharp.rs crates/suite/src/derivation.rs crates/suite/src/java.rs crates/suite/src/ratsjava.rs crates/suite/src/sql.rs crates/suite/src/vb.rs

/root/repo/target/release/deps/libllstar_suite-590531cc3c57ff9e.rlib: crates/suite/src/lib.rs crates/suite/src/c.rs crates/suite/src/common.rs crates/suite/src/csharp.rs crates/suite/src/derivation.rs crates/suite/src/java.rs crates/suite/src/ratsjava.rs crates/suite/src/sql.rs crates/suite/src/vb.rs

/root/repo/target/release/deps/libllstar_suite-590531cc3c57ff9e.rmeta: crates/suite/src/lib.rs crates/suite/src/c.rs crates/suite/src/common.rs crates/suite/src/csharp.rs crates/suite/src/derivation.rs crates/suite/src/java.rs crates/suite/src/ratsjava.rs crates/suite/src/sql.rs crates/suite/src/vb.rs

crates/suite/src/lib.rs:
crates/suite/src/c.rs:
crates/suite/src/common.rs:
crates/suite/src/csharp.rs:
crates/suite/src/derivation.rs:
crates/suite/src/java.rs:
crates/suite/src/ratsjava.rs:
crates/suite/src/sql.rs:
crates/suite/src/vb.rs:
