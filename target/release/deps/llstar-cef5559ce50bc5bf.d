/root/repo/target/release/deps/llstar-cef5559ce50bc5bf.d: src/bin/llstar.rs

/root/repo/target/release/deps/llstar-cef5559ce50bc5bf: src/bin/llstar.rs

src/bin/llstar.rs:
