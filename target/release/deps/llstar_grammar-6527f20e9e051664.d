/root/repo/target/release/deps/llstar_grammar-6527f20e9e051664.d: crates/grammar/src/lib.rs crates/grammar/src/ast.rs crates/grammar/src/display.rs crates/grammar/src/leftrec.rs crates/grammar/src/meta.rs crates/grammar/src/pegmode.rs crates/grammar/src/validate.rs crates/grammar/src/vocab.rs

/root/repo/target/release/deps/libllstar_grammar-6527f20e9e051664.rlib: crates/grammar/src/lib.rs crates/grammar/src/ast.rs crates/grammar/src/display.rs crates/grammar/src/leftrec.rs crates/grammar/src/meta.rs crates/grammar/src/pegmode.rs crates/grammar/src/validate.rs crates/grammar/src/vocab.rs

/root/repo/target/release/deps/libllstar_grammar-6527f20e9e051664.rmeta: crates/grammar/src/lib.rs crates/grammar/src/ast.rs crates/grammar/src/display.rs crates/grammar/src/leftrec.rs crates/grammar/src/meta.rs crates/grammar/src/pegmode.rs crates/grammar/src/validate.rs crates/grammar/src/vocab.rs

crates/grammar/src/lib.rs:
crates/grammar/src/ast.rs:
crates/grammar/src/display.rs:
crates/grammar/src/leftrec.rs:
crates/grammar/src/meta.rs:
crates/grammar/src/pegmode.rs:
crates/grammar/src/validate.rs:
crates/grammar/src/vocab.rs:
