/root/repo/target/release/deps/llstar_lexer-86e095cb0dd5c0f0.d: crates/lexer/src/lib.rs crates/lexer/src/charclass.rs crates/lexer/src/dfa.rs crates/lexer/src/nfa.rs crates/lexer/src/regex.rs crates/lexer/src/scanner.rs crates/lexer/src/token.rs

/root/repo/target/release/deps/libllstar_lexer-86e095cb0dd5c0f0.rlib: crates/lexer/src/lib.rs crates/lexer/src/charclass.rs crates/lexer/src/dfa.rs crates/lexer/src/nfa.rs crates/lexer/src/regex.rs crates/lexer/src/scanner.rs crates/lexer/src/token.rs

/root/repo/target/release/deps/libllstar_lexer-86e095cb0dd5c0f0.rmeta: crates/lexer/src/lib.rs crates/lexer/src/charclass.rs crates/lexer/src/dfa.rs crates/lexer/src/nfa.rs crates/lexer/src/regex.rs crates/lexer/src/scanner.rs crates/lexer/src/token.rs

crates/lexer/src/lib.rs:
crates/lexer/src/charclass.rs:
crates/lexer/src/dfa.rs:
crates/lexer/src/nfa.rs:
crates/lexer/src/regex.rs:
crates/lexer/src/scanner.rs:
crates/lexer/src/token.rs:
