/root/repo/target/release/deps/llstar_codegen-08c2d251e234a6d6.d: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs

/root/repo/target/release/deps/libllstar_codegen-08c2d251e234a6d6.rlib: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs

/root/repo/target/release/deps/libllstar_codegen-08c2d251e234a6d6.rmeta: crates/codegen/src/lib.rs crates/codegen/src/lexer_gen.rs crates/codegen/src/parser_gen.rs crates/codegen/src/writer.rs

crates/codegen/src/lib.rs:
crates/codegen/src/lexer_gen.rs:
crates/codegen/src/parser_gen.rs:
crates/codegen/src/writer.rs:
