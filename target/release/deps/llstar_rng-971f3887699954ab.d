/root/repo/target/release/deps/llstar_rng-971f3887699954ab.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libllstar_rng-971f3887699954ab.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libllstar_rng-971f3887699954ab.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
