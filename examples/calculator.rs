//! A calculator built from a *left-recursive* expression grammar.
//!
//! The paper (Section 1.1) sketches how the next ANTLR release rewrites
//! immediately left-recursive rules into predicated loops with precedence
//! following alternative order. `rewrite_left_recursion` performs the
//! equivalent stratification; this example parses and evaluates
//! arithmetic with correct precedence and associativity.
//!
//! Run with: `cargo run --example calculator -- "1 + 2 * 3 - (4 - 5)"`

use llstar::core::analyze;
use llstar::grammar::{parse_grammar, rewrite_left_recursion, Grammar};
use llstar::runtime::{parse_text, NopHooks, ParseTree};

fn build_grammar() -> Result<Grammar, Box<dyn std::error::Error>> {
    // Written naturally with left recursion, like the paper's
    //   e : e '*' e | e '+' e | INT ;
    let grammar = parse_grammar(
        r#"
        grammar Calc;
        e : e ('*' | '/') e
          | e ('+' | '-') e
          | '(' e ')'
          | '-' e
          | INT
          ;
        INT : [0-9]+ ;
        WS : [ \t]+ -> skip ;
        "#,
    )?;
    // LL(*) forbids left recursion; the rewrite produces an equivalent
    // precedence ladder (highest-precedence alternative binds tightest).
    Ok(rewrite_left_recursion(grammar)?)
}

/// Evaluates the parse tree by structural recursion. The stratified
/// grammar makes precedence explicit in the tree shape.
fn eval(tree: &ParseTree, src: &str) -> f64 {
    match tree {
        ParseTree::Token(tok) => tok.text(src).parse().unwrap_or(f64::NAN),
        ParseTree::Rule { children, .. } => {
            // Filter to operand/operator positions: rules and tokens
            // alternate as `operand (op operand)*` at binary levels.
            let mut acc: Option<f64> = None;
            let mut pending_op: Option<char> = None;
            let mut unary_minus = false;
            for child in children {
                match child {
                    ParseTree::Token(tok) => {
                        let text = tok.text(src);
                        match text {
                            "(" | ")" => {}
                            "-" if acc.is_none() && pending_op.is_none() => {
                                unary_minus = !unary_minus;
                            }
                            "+" | "-" | "*" | "/" => {
                                pending_op = text.chars().next();
                            }
                            _ => {
                                // INT leaf at the innermost level.
                                let v =
                                    apply_sign(text.parse().unwrap_or(f64::NAN), &mut unary_minus);
                                acc = Some(combine(acc, pending_op.take(), v));
                            }
                        }
                    }
                    sub => {
                        let v = apply_sign(eval(sub, src), &mut unary_minus);
                        acc = Some(combine(acc, pending_op.take(), v));
                    }
                }
            }
            acc.unwrap_or(f64::NAN)
        }
        // Only produced under error recovery, which this example leaves off.
        ParseTree::Error { .. } => f64::NAN,
    }
}

fn apply_sign(v: f64, unary_minus: &mut bool) -> f64 {
    if std::mem::take(unary_minus) {
        -v
    } else {
        v
    }
}

fn combine(acc: Option<f64>, op: Option<char>, v: f64) -> f64 {
    match (acc, op) {
        (None, _) => v,
        (Some(a), Some('+')) => a + v,
        (Some(a), Some('-')) => a - v,
        (Some(a), Some('*')) => a * v,
        (Some(a), Some('/')) => a / v,
        (Some(_), _) => v,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = std::env::args().nth(1).unwrap_or_else(|| "1 + 2 * 3 - (4 - 5)".to_string());
    let grammar = build_grammar()?;
    let analysis = analyze(&grammar);
    let (tree, stats) = parse_text(&grammar, &analysis, &input, "e", NopHooks)?;
    println!("input : {input}");
    println!("tree  : {}", tree.to_sexpr(&grammar, &input));
    println!("value : {}", eval(&tree, &input));
    println!("avg lookahead: {:.2} tokens", stats.avg_lookahead());
    Ok(())
}
