//! Quickstart: define a grammar, run LL(*) analysis, inspect the
//! lookahead DFA it built, and parse some input.
//!
//! Run with: `cargo run --example quickstart`

use llstar::core::{analyze, DecisionClass};
use llstar::grammar::parse_grammar;
use llstar::runtime::{parse_text, NopHooks};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Section 2 example: four alternatives needing k=1, k=2,
    // and arbitrary lookahead, all in one decision.
    let grammar = parse_grammar(
        r#"
        grammar Quickstart;
        s : ID
          | ID '=' expr
          | 'unsigned'* 'int' ID
          | 'unsigned'* ID ID
          ;
        expr : INT ;
        ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
        INT : [0-9]+ ;
        WS : [ \t\r\n]+ -> skip ;
        "#,
    )?;

    // Static analysis: one lookahead DFA per decision.
    let analysis = analyze(&grammar);
    println!("analyzed {} decisions in {:?}", analysis.decisions.len(), analysis.elapsed);
    for d in &analysis.decisions {
        let class = match d.dfa.classify() {
            DecisionClass::Fixed { k } => format!("fixed LL({k})"),
            DecisionClass::Cyclic => "cyclic (arbitrary lookahead)".to_string(),
            DecisionClass::Backtrack => "backtracking".to_string(),
        };
        println!("  decision {}: {class}", d.decision.0);
    }

    // The DFA for rule s — compare with the paper's Figure 1.
    println!("\nlookahead DFA for rule s:");
    print!("{}", analysis.decisions[0].dfa.to_pretty(&grammar));

    // Parse each kind of input; the DFA picks the production using the
    // minimum lookahead that particular input needs.
    for input in ["x", "x = 42", "unsigned unsigned int n", "unsigned T name", "int n"] {
        let (tree, stats) = parse_text(&grammar, &analysis, input, "s", NopHooks)
            .map_err(|e| format!("{input}: {e}"))?;
        println!(
            "\n{input:?} parsed with max lookahead {}:\n  {}",
            stats.max_lookahead(),
            tree.to_sexpr(&grammar, input)
        );
    }
    Ok(())
}
