//! The parser-generator experience: turn a grammar into a standalone
//! Rust source file (like running the `antlr` tool).
//!
//! Run with: `cargo run --example generate_parser [path/to/grammar.g]`
//! Prints the generated parser to stdout; compile it with
//! `rustc --edition 2021 --crate-type lib generated.rs`.

use llstar::codegen::generate;
use llstar::core::analyze;
use llstar::grammar::{apply_peg_mode, parse_grammar, validate};

const DEFAULT_GRAMMAR: &str = r#"
grammar Config;
file : entry* EOF ;
entry : section | assignment ;
section : '[' ID ']' ;
assignment : ID '=' value ';' ;
value : ID | NUMBER | STRING | 'true' | 'false' | list ;
list : '(' value (',' value)* ')' ;
ID : [a-zA-Z_] [a-zA-Z0-9_.]* ;
NUMBER : '-'? [0-9]+ ('.' [0-9]+)? ;
STRING : '"' (~["\\] | '\\' .)* '"' ;
WS : [ \t\r\n]+ -> skip ;
COMMENT : '#' (~[\n])* -> skip ;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEFAULT_GRAMMAR.to_string(),
    };

    let grammar = apply_peg_mode(parse_grammar(&source)?);
    for issue in validate(&grammar) {
        eprintln!("warning: {issue}");
        if issue.is_error() {
            return Err(issue.to_string().into());
        }
    }

    let analysis = analyze(&grammar);
    eprintln!(
        "analyzed grammar `{}`: {} rules, {} decisions, {:?}",
        grammar.name,
        grammar.rules.len(),
        analysis.decisions.len(),
        analysis.elapsed
    );
    for d in &analysis.decisions {
        for w in &analysis.decision(d.decision).warnings {
            eprintln!("warning: decision {}: {w:?}", d.decision.0);
        }
    }

    let code = generate(&grammar, &analysis)?;
    println!("{code}");
    Ok(())
}
