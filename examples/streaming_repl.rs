//! A statement-at-a-time interpreter over a *live* token stream — the
//! paper's Section 4 point that LL(*) parses one-pass, left-to-right,
//! unlike earlier LL-regular parsers that "cannot parse infinite streams
//! such as socket protocols and interactive interpreters".
//!
//! Statements are parsed and evaluated as soon as enough tokens have
//! arrived; the stream is never read further than the current decision's
//! lookahead needs.
//!
//! Run with: `echo "x = 2 ; y = x + 3 ; print y ;" | cargo run --example streaming_repl`
//! or interactively: `cargo run --example streaming_repl` then type
//! statements followed by Enter (Ctrl-D to quit).

use llstar::core::analyze;
use llstar::grammar::parse_grammar;
use llstar::runtime::{render_all, Diagnostic, NopHooks, ParseTree, Parser, TokenStream};
use llstar_lexer::Token;
use std::collections::HashMap;
use std::io::BufRead;

const GRAMMAR: &str = r#"
grammar Repl;
stat : ID '=' expr ';' | 'print' expr ';' ;
expr : term (('+' | '-') term)* ;
term : ID | INT ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grammar = parse_grammar(GRAMMAR)?;
    let analysis = analyze(&grammar);
    let scanner = grammar.lexer.build()?;

    // A lazy token source: lex stdin line by line, handing tokens out
    // only as the parser pulls them. We keep the accumulated source text
    // so token spans can be resolved for evaluation.
    let source_text = std::rc::Rc::new(std::cell::RefCell::new(String::new()));
    let source_for_pull = source_text.clone();
    let mut pending: Vec<Token> = Vec::new();
    let mut stdin = std::io::stdin().lock();
    let mut lines_seen: u32 = 0;
    let pull = move || -> Option<Token> {
        loop {
            if let Some(tok) = pending.first().copied() {
                pending.remove(0);
                return Some(tok);
            }
            let mut line = String::new();
            if stdin.read_line(&mut line).ok()? == 0 {
                return None; // EOF on stdin
            }
            let offset = source_for_pull.borrow().len();
            source_for_pull.borrow_mut().push_str(&line);
            // Lex just this line; shift spans and line numbers to global
            // coordinates and drop the per-line EOF.
            match scanner.tokenize(&line) {
                Ok(mut toks) => {
                    toks.pop();
                    for t in &mut toks {
                        t.span.start += offset;
                        t.span.end += offset;
                        t.line += lines_seen;
                    }
                    pending.extend(toks);
                }
                Err(e) => eprintln!("lex error: {e}"),
            }
            lines_seen += 1;
        }
    };

    let mut parser = Parser::new(&grammar, &analysis, TokenStream::from_source(pull), NopHooks);
    // Error recovery keeps the session alive across malformed statements:
    // each bad line produces diagnostics, not a dead REPL.
    parser.enable_recovery(usize::MAX);
    let mut env: HashMap<String, i64> = HashMap::new();

    eprintln!("streaming LL(*) interpreter — statements like `x = 1 + 2 ;` or `print x ;`");
    loop {
        if parser.at_eof() {
            break;
        }
        match parser.parse("stat") {
            Ok(tree) => {
                let errors = parser.take_errors();
                let src = source_text.borrow();
                if errors.is_empty() {
                    execute(&tree, &src, &mut env);
                } else {
                    // The statement was repaired, not understood: render
                    // the diagnostics and skip evaluation rather than
                    // executing a guess.
                    let diags = Diagnostic::from_errors(&grammar, &errors);
                    eprint!("{}", render_all(&diags, &src, "<stdin>"));
                }
            }
            Err(e) => {
                // EOF (or an error at it) ends the session.
                if e.token.ttype.is_eof() {
                    break;
                }
                eprintln!("parse error: {e}");
                break;
            }
        }
    }
    Ok(())
}

fn execute(tree: &ParseTree, src: &str, env: &mut HashMap<String, i64>) {
    let ParseTree::Rule { alt, children, .. } = tree else { return };
    match alt {
        1 => {
            // ID '=' expr ';'
            let name = leaf_text(&children[0], src).to_string();
            let value = eval(&children[2], src, env);
            env.insert(name.clone(), value);
            eprintln!("  {name} = {value}");
        }
        2 => {
            // 'print' expr ';'
            let value = eval(&children[1], src, env);
            println!("{value}");
        }
        _ => {}
    }
}

fn eval(tree: &ParseTree, src: &str, env: &HashMap<String, i64>) -> i64 {
    match tree {
        ParseTree::Token(t) => {
            let text = t.text(src);
            text.parse().unwrap_or_else(|_| env.get(text).copied().unwrap_or(0))
        }
        ParseTree::Rule { children, .. } => {
            let mut acc = 0i64;
            let mut op = '+';
            for c in children {
                match c {
                    ParseTree::Token(t) if matches!(t.text(src), "+" | "-") => {
                        op = t.text(src).chars().next().unwrap_or('+');
                    }
                    sub => {
                        let v = eval(sub, src, env);
                        acc = if op == '+' { acc + v } else { acc - v };
                    }
                }
            }
            acc
        }
        // Unreachable here: repaired statements are never evaluated.
        ParseTree::Error { .. } => 0,
    }
}

fn leaf_text<'s>(tree: &ParseTree, src: &'s str) -> &'s str {
    match tree {
        ParseTree::Token(t) => t.text(src),
        _ => "",
    }
}
