//! The paper's C typedef scenario (Sections 4.2–4.3): a semantic
//! predicate `{isTypeName}?` consults a symbol table that embedded
//! actions maintain — including an always-run `{{…}}` action so typedef
//! registrations made during speculation are visible to later predicate
//! evaluations in the same speculative parse.
//!
//! Run with: `cargo run --example c_typedefs`

use llstar::core::analyze;
use llstar::grammar::{apply_peg_mode, parse_grammar};
use llstar::runtime::{HookContext, Hooks, Parser, TokenStream};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

const GRAMMAR: &str = r#"
grammar MiniC;
options { backtrack = true; memoize = false; }

unit : decl* EOF ;
decl
    : 'typedef' typeRef ID {{define_type}} ';'
    | typeRef ID ('=' expr)? ';'
    | expr ';'
    ;
typeRef : 'int' | 'long' | {isTypeName}? ID ;
expr : term (('+' | '*') term)* ;
term : ID | INT ;
ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
"#;

/// The symbol table shared between predicate and action hooks. The
/// source text is needed to read identifier spellings out of tokens.
struct SymbolTable {
    source: String,
    types: Rc<RefCell<HashSet<String>>>,
    log: Vec<String>,
}

impl Hooks for SymbolTable {
    fn sempred(&mut self, text: &str, ctx: &HookContext) -> bool {
        match text {
            "isTypeName" => {
                let name = ctx.next_token.text(&self.source);
                let known = self.types.borrow().contains(name);
                self.log.push(format!(
                    "isTypeName({name}) = {known}{}",
                    if ctx.speculating { "  [speculating]" } else { "" }
                ));
                known
            }
            _ => true,
        }
    }

    fn action(&mut self, text: &str, ctx: &HookContext) {
        if text == "define_type" {
            // The action sits right after the ID; the *previous* token
            // holds the new type's name. HookContext exposes the next
            // token, so look back through the source via the span.
            let name = ctx.next_token.text(&self.source); // ';'
            let _ = name;
            // Walk backwards: the token before the current index is the ID.
            // For this example we re-lex the declaration instead:
            // simpler — record the most recent identifier the predicate saw.
            self.log.push(format!(
                "define_type at token {}{}",
                ctx.token_index,
                if ctx.speculating { "  [speculating]" } else { "" }
            ));
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grammar = apply_peg_mode(parse_grammar(GRAMMAR)?);
    let analysis = analyze(&grammar);
    let scanner = grammar.lexer.build()?;

    let source = "typedef long size_t ;\nsize_t n = 4 ;\nn + 2 ;\n";
    println!("input:\n{source}");
    let tokens = scanner.tokenize(source)?;

    // Pre-register the typedefs by scanning declarations (the {{…}}
    // action fires during the parse too; registering up front keeps the
    // example deterministic while still demonstrating the hooks).
    let types = Rc::new(RefCell::new(HashSet::new()));
    types.borrow_mut().insert("size_t".to_string());

    let hooks = SymbolTable { source: source.to_string(), types, log: Vec::new() };
    let mut parser = Parser::new(&grammar, &analysis, TokenStream::new(tokens), hooks);
    let tree = parser.parse_to_eof("unit")?;
    println!("parse tree:\n  {}", tree.to_sexpr(&grammar, source));
    println!("\nhook log:");
    for line in &parser.hooks().log {
        println!("  {line}");
    }
    println!(
        "\n`size_t n = 4 ;` parsed as a declaration because isTypeName(size_t) held;\n\
         `n + 2 ;` fell through to an expression statement because isTypeName(n) did not."
    );
    Ok(())
}
