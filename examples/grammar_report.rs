//! Grammar analysis report: the diagnostics a grammar author sees —
//! per-decision classification, warnings (ambiguities, dead productions,
//! LL(1) fallbacks), and the DFA for any decision of interest.
//!
//! Run with:
//!   `cargo run --example grammar_report`              (built-in demo)
//!   `cargo run --example grammar_report -- file.g`    (your grammar)

use llstar::core::{analyze, DecisionClass};
use llstar::grammar::{apply_peg_mode, parse_grammar, validate};

const DEMO: &str = r#"
grammar Demo;
options { backtrack = true; }
s : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
t : '-'* ID | expr ;
amb : (A | A) B ;          // statically detectable ambiguity
dead : A | A ;             // second production is dead
expr : INT | '-' expr ;
A : 'a' ;
B : 'b' ;
ID : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO.to_string(),
    };
    let grammar = apply_peg_mode(parse_grammar(&source)?);

    println!("grammar {} — {} rules", grammar.name, grammar.rules.len());
    for issue in validate(&grammar) {
        println!("  {}: {issue}", if issue.is_error() { "error" } else { "warning" });
    }

    let analysis = analyze(&grammar);
    println!("\nanalysis took {:?}; {} decisions:", analysis.elapsed, analysis.decisions.len());
    let mut fixed = 0;
    let mut cyclic = 0;
    let mut backtrack = 0;
    for d in &analysis.atn.decisions {
        if !d.is_grammar_decision() {
            continue;
        }
        let da = analysis.decision(d.id);
        let class = match da.dfa.classify() {
            DecisionClass::Fixed { k } => {
                fixed += 1;
                format!("LL({k})")
            }
            DecisionClass::Cyclic => {
                cyclic += 1;
                "cyclic".to_string()
            }
            DecisionClass::Backtrack => {
                backtrack += 1;
                "backtrack".to_string()
            }
        };
        println!(
            "  d{} in rule {:<8} {:?}: {class}, {} DFA states",
            d.id.0,
            grammar.rule(d.rule).name,
            d.kind,
            da.dfa.states.len()
        );
        for w in &da.warnings {
            println!("      warning: {w:?}");
        }
    }
    println!("\nsummary: {fixed} fixed, {cyclic} cyclic, {backtrack} backtracking");

    // Show one interesting DFA in full (the first cyclic or backtracking
    // one, else the first).
    if let Some(d) = analysis
        .atn
        .decisions
        .iter()
        .find(|d| {
            d.is_grammar_decision()
                && !matches!(analysis.decision(d.id).dfa.classify(), DecisionClass::Fixed { .. })
        })
        .or_else(|| analysis.atn.decisions.first())
    {
        println!("\nlookahead DFA for decision d{} (rule {}):", d.id.0, grammar.rule(d.rule).name);
        print!("{}", analysis.decision(d.id).dfa.to_pretty(&grammar));
    }
    Ok(())
}
