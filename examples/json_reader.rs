//! A JSON reader: grammar → analysis → parse tree → typed `Value`.
//!
//! JSON is LL(1), so every decision here gets a one-token DFA — the
//! degenerate (and fastest) corner of the LL(*) spectrum.
//!
//! Run with: `cargo run --example json_reader`

use llstar::core::{analyze, DecisionClass};
use llstar::grammar::{parse_grammar, Grammar};
use llstar::runtime::{parse_text, NopHooks, ParseTree};
use std::collections::BTreeMap;

const JSON_GRAMMAR: &str = r#"
grammar Json;
value : object | array | STRING | NUMBER | 'true' | 'false' | 'null' ;
object : '{' (pair (',' pair)*)? '}' ;
pair : STRING ':' value ;
array : '[' (value (',' value)*)? ']' ;
STRING : '"' (~["\\] | '\\' .)* '"' ;
NUMBER : '-'? [0-9]+ ('.' [0-9]+)? ([eE] [+\-]? [0-9]+)? ;
WS : [ \t\r\n]+ -> skip ;
"#;

/// A decoded JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

fn decode(grammar: &Grammar, tree: &ParseTree, src: &str) -> Value {
    match tree {
        ParseTree::Token(tok) => {
            let text = tok.text(src);
            match text {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                "null" => Value::Null,
                s if s.starts_with('"') => Value::String(s[1..s.len() - 1].to_string()),
                s => Value::Number(s.parse().unwrap_or(f64::NAN)),
            }
        }
        ParseTree::Rule { rule, children, .. } => match grammar.rule(*rule).name.as_str() {
            "value" => decode(grammar, &children[0], src),
            "object" => {
                let mut map = BTreeMap::new();
                for c in children {
                    if let ParseTree::Rule { rule: r, children: kv, .. } = c {
                        if grammar.rule(*r).name == "pair" {
                            let key = match decode(grammar, &kv[0], src) {
                                Value::String(s) => s,
                                other => format!("{other:?}"),
                            };
                            map.insert(key, decode(grammar, &kv[2], src));
                        }
                    }
                }
                Value::Object(map)
            }
            "array" => Value::Array(
                children
                    .iter()
                    .filter(|c| matches!(c, ParseTree::Rule { .. }))
                    .map(|c| decode(grammar, c, src))
                    .collect(),
            ),
            "pair" => decode(grammar, &children[2], src),
            other => panic!("unexpected rule {other}"),
        },
        // Only produced under error recovery, which this example leaves off.
        ParseTree::Error { .. } => Value::Null,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grammar = parse_grammar(JSON_GRAMMAR)?;
    let analysis = analyze(&grammar);

    // Every JSON decision is LL(1).
    let all_ll1 = analysis
        .decisions
        .iter()
        .all(|d| matches!(d.dfa.classify(), DecisionClass::Fixed { k: 1 }));
    println!("all decisions LL(1): {all_ll1}");

    let doc = r#"
    {
        "name": "llstar",
        "strategy": "LL(*)",
        "year": 2011,
        "cyclic": true,
        "authors": ["Parr", "Fisher"],
        "tables": { "reproduced": 4, "figures": 3.5 },
        "missing": null
    }
    "#;
    let (tree, stats) = parse_text(&grammar, &analysis, doc, "value", NopHooks)?;
    let value = decode(&grammar, &tree, doc);
    println!("decoded: {value:#?}");
    println!(
        "parsed {} tokens with avg lookahead {:.2}",
        tree.token_count(),
        stats.avg_lookahead()
    );
    Ok(())
}
