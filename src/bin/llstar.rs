//! The `llstar` command-line tool — the ANTLR-tool experience:
//!
//! ```text
//! llstar check <grammar.g>                 validate + analyze, print report
//! llstar dfa <grammar.g> [rule]            print lookahead DFAs
//! llstar atn <grammar.g>                   print the ATN in Graphviz dot
//! llstar generate <grammar.g> [out.rs]     emit a standalone Rust parser
//! llstar parse <grammar.g> <rule> <file>   parse a file, print the tree
//! ```

use llstar::codegen::generate;
use llstar::core::{
    analyze, deserialize_analysis, serialize_analysis, Atn, DecisionClass, GrammarAnalysis,
};
use llstar::grammar::{apply_peg_mode, parse_grammar, validate, Grammar};
use llstar::runtime::{parse_text, NopHooks};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => with_grammar(&args, 2, |g, a| {
            report(g, a);
            Ok(())
        }),
        Some("dfa") => with_grammar(&args, 2, |g, a| {
            dump_dfas(g, a, args.get(2).map(String::as_str));
            Ok(())
        }),
        Some("atn") => with_grammar(&args, 2, |g, _| {
            println!("{}", Atn::from_grammar(g).to_dot(g));
            Ok(())
        }),
        Some("generate") => with_grammar(&args, 2, |g, a| {
            let code = generate(g, a)?;
            match args.get(2) {
                Some(path) => {
                    std::fs::write(path, code).map_err(|e| e.to_string())?;
                    eprintln!("wrote {path}");
                }
                None => print!("{code}"),
            }
            Ok(())
        }),
        Some("compile") => with_grammar(&args, 3, |g, a| {
            let out = &args[2];
            std::fs::write(out, serialize_analysis(g, a)).map_err(|e| e.to_string())?;
            eprintln!("wrote serialized lookahead DFAs to {out}");
            Ok(())
        }),
        Some("parse") => with_grammar(&args, 4, |g, a| {
            let rule = &args[2];
            // Optional: --dfa <file> loads pre-compiled DFAs instead of
            // the freshly computed analysis.
            let loaded;
            let a = if let Some(pos) = args.iter().position(|x| x == "--dfa") {
                let path = args.get(pos + 1).ok_or("--dfa needs a file")?;
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                loaded = deserialize_analysis(g, &text).map_err(|e| e.to_string())?;
                &loaded
            } else {
                a
            };
            let input =
                std::fs::read_to_string(&args[3]).map_err(|e| format!("{}: {e}", args[3]))?;
            let (tree, stats) = parse_text(g, a, &input, rule, NopHooks)?;
            println!("{}", tree.to_sexpr(g, &input));
            eprintln!(
                "ok: {} tokens, {} decision events, avg lookahead {:.2}, {} backtracks",
                tree.token_count(),
                stats.total_events(),
                stats.avg_lookahead(),
                stats.total_backtrack_events()
            );
            Ok(())
        }),
        _ => {
            eprintln!(
                "usage: llstar <check|dfa|atn|generate|parse> <grammar.g> …\n\
                 \n\
                 llstar check    <grammar.g>                validate + analysis report\n\
                 llstar dfa      <grammar.g> [rule]         print lookahead DFAs\n\
                 llstar atn      <grammar.g>                ATN as Graphviz dot\n\
                 llstar generate <grammar.g> [out.rs]       emit a Rust parser\n\
                 llstar compile  <grammar.g> <out.dfa>      serialize lookahead DFAs\n\
                 llstar parse    <grammar.g> <rule> <file> [--dfa f]  parse a file"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn with_grammar(
    args: &[String],
    min_args: usize,
    f: impl FnOnce(&Grammar, &GrammarAnalysis) -> Result<(), String>,
) -> Result<(), String> {
    if args.len() < min_args {
        return Err("missing arguments (run with no arguments for usage)".into());
    }
    let path = &args[1];
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let grammar = apply_peg_mode(parse_grammar(&source).map_err(|e| e.to_string())?);
    let mut fatal = false;
    for issue in validate(&grammar) {
        if issue.is_error() {
            eprintln!("error: {issue}");
            fatal = true;
        } else {
            eprintln!("warning: {issue}");
        }
    }
    if fatal {
        return Err("grammar has errors".into());
    }
    let analysis = analyze(&grammar);
    f(&grammar, &analysis)
}

fn report(grammar: &Grammar, analysis: &GrammarAnalysis) {
    println!(
        "grammar {}: {} rules, {} tokens, {} decisions, analyzed in {:?}",
        grammar.name,
        grammar.rules.len(),
        grammar.vocab.len(),
        analysis.atn.decisions.iter().filter(|d| d.is_grammar_decision()).count(),
        analysis.elapsed
    );
    let (mut fixed, mut cyclic, mut backtrack) = (0, 0, 0);
    for d in &analysis.atn.decisions {
        if !d.is_grammar_decision() {
            continue;
        }
        let da = analysis.decision(d.id);
        match da.dfa.classify() {
            DecisionClass::Fixed { .. } => fixed += 1,
            DecisionClass::Cyclic => cyclic += 1,
            DecisionClass::Backtrack => backtrack += 1,
        }
        for warning in &da.warnings {
            println!(
                "warning: rule {}, decision d{}: {warning:?}",
                grammar.rule(d.rule).name,
                d.id.0
            );
        }
    }
    println!("decision classes: {fixed} fixed LL(k), {cyclic} cyclic, {backtrack} backtracking");
}

fn dump_dfas(grammar: &Grammar, analysis: &GrammarAnalysis, rule_filter: Option<&str>) {
    for d in &analysis.atn.decisions {
        if !d.is_grammar_decision() {
            continue;
        }
        let rule_name = &grammar.rule(d.rule).name;
        if let Some(filter) = rule_filter {
            if rule_name != filter {
                continue;
            }
        }
        let da = analysis.decision(d.id);
        println!(
            "== decision d{} in rule {rule_name} ({:?}, {:?})",
            d.id.0,
            d.kind,
            da.dfa.classify()
        );
        print!("{}", da.dfa.to_pretty(grammar));
    }
}
