//! The `llstar` command-line tool — the ANTLR-tool experience:
//!
//! ```text
//! llstar check <grammar.g>                 validate + analyze, print report
//! llstar dfa <grammar.g> [rule]            print lookahead DFAs
//! llstar atn <grammar.g>                   print the ATN in Graphviz dot
//! llstar generate <grammar.g> [out.rs]     emit a standalone Rust parser
//! llstar parse <grammar.g> <rule> <file>   parse a file, print the tree
//! ```
//!
//! Analysis-carrying subcommands (`check`, `dfa`, `generate`, `compile`,
//! `parse`) accept two shared flags:
//!
//! * `--jobs N` — worker threads for per-decision DFA construction
//!   (`0`/default = available parallelism, `1` = sequential). Every value
//!   produces byte-identical analyses; it only changes wall-clock time.
//! * `--cache <dir>` — persistent analysis cache. The serialized
//!   analysis is stored as `<dir>/<grammar-name>.dfa`, guarded by an
//!   FNV-1a fingerprint of the grammar text; a matching cache file is
//!   loaded without running subset construction, anything else (absent,
//!   stale after a grammar edit, corrupted) triggers re-analysis and an
//!   atomic rewrite. The hit/miss outcome is reported on stderr.

use llstar::codegen::{generate_with, CodegenOptions};
use llstar::core::json::Json;
use llstar::core::{
    analyze_cached_metered, analyze_with, cache_path, deserialize_analysis, schema,
    serialize_analysis, AnalysisOptions, AnalysisRecord, Atn, CacheMetrics, DecisionClass,
    GrammarAnalysis,
};
use llstar::grammar::{apply_peg_mode, parse_grammar, validate, Grammar};
use llstar::runtime::{
    chrome_trace, diagnostics_jsonl, parse_metrics_jsonl, parse_text, parse_text_recovering_traced,
    parse_text_traced, render_all, validate_prometheus, CoverageSink, Diagnostic, MetricsSnapshot,
    NopHooks, ParseSession, ParseStats, Parser, RingSink, TeeSink, TokenStream, TraceEvent,
    TraceSink,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Flags shared by every analysis-carrying subcommand.
struct Flags {
    /// `--cache <dir>`: analysis cache directory.
    cache: Option<PathBuf>,
    /// `--jobs N`: analysis worker threads (0 = available parallelism).
    jobs: Option<usize>,
    /// `--json <path>`: JSONL export target (`profile`, `check`).
    json: Option<PathBuf>,
    /// `--rule <name>`: start rule override (`profile`, `check`).
    rule: Option<String>,
    /// `-v`/`--verbose`: extra diagnostics (e.g. cache metrics).
    verbose: bool,
    /// `--trace`: emit trace hooks in generated parsers (`generate`).
    trace: bool,
    /// `--diagnostics`: recover from syntax errors and render annotated
    /// diagnostics instead of stopping at the first error.
    diagnostics: bool,
    /// `--max-errors N`: recovery cap (implies `--diagnostics`).
    max_errors: Option<usize>,
    /// `--coverage`: emit coverage counters in generated parsers
    /// (`generate`).
    coverage: bool,
    /// `--metrics`: emit metric counters in generated parsers
    /// (`generate`).
    metrics: bool,
    /// `--chrome-trace <file>`: export a Chrome `trace_event` file
    /// (`coverage`).
    chrome_trace: Option<PathBuf>,
    /// `--fail-uncovered`: exit non-zero when alternatives stay
    /// uncovered (`coverage`).
    fail_uncovered: bool,
    /// `--prometheus`: render Prometheus text exposition (`metrics`).
    prometheus: bool,
    /// `--sample N`: keep 1 in N top-level prediction windows in the
    /// trace stream (`profile`).
    sample: Option<u64>,
    /// `--validate <file>`: check a Prometheus exposition file instead
    /// of measuring (`metrics`).
    validate: Option<PathBuf>,
    /// `--once`: render a single frame and exit (`watch`).
    once: bool,
    /// `--top N`: dashboard rows (`watch`, default 10).
    top: Option<usize>,
    /// `--interval-ms N`: dashboard refresh period (`watch`, default
    /// 1000).
    interval_ms: Option<u64>,
}

impl Flags {
    /// Whether error recovery was requested, and the effective cap.
    fn recovery(&self) -> Option<usize> {
        match (self.diagnostics, self.max_errors) {
            (_, Some(n)) => Some(n),
            (true, None) => Some(10),
            (false, None) => None,
        }
    }
}

/// Extracts the shared flags from `args`, returning the remaining
/// positional arguments and the parsed flags.
fn split_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut flags = Flags {
        cache: None,
        jobs: None,
        json: None,
        rule: None,
        verbose: false,
        trace: false,
        diagnostics: false,
        max_errors: None,
        coverage: false,
        metrics: false,
        chrome_trace: None,
        fail_uncovered: false,
        prometheus: false,
        sample: None,
        validate: None,
        once: false,
        top: None,
        interval_ms: None,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache" => {
                let dir = it.next().ok_or("--cache needs a directory")?;
                flags.cache = Some(PathBuf::from(dir));
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a thread count")?;
                flags.jobs =
                    Some(n.parse().map_err(|_| format!("--jobs: bad thread count {n:?}"))?);
            }
            "--json" => {
                let path = it.next().ok_or("--json needs a file path")?;
                flags.json = Some(PathBuf::from(path));
            }
            "--rule" => {
                let name = it.next().ok_or("--rule needs a rule name")?;
                flags.rule = Some(name.clone());
            }
            "-v" | "--verbose" => flags.verbose = true,
            "--trace" => flags.trace = true,
            "--diagnostics" => flags.diagnostics = true,
            "--max-errors" => {
                let n = it.next().ok_or("--max-errors needs a count")?;
                flags.max_errors =
                    Some(n.parse().map_err(|_| format!("--max-errors: bad count {n:?}"))?);
            }
            "--coverage" => flags.coverage = true,
            "--metrics" => flags.metrics = true,
            "--chrome-trace" => {
                let path = it.next().ok_or("--chrome-trace needs a file path")?;
                flags.chrome_trace = Some(PathBuf::from(path));
            }
            "--fail-uncovered" => flags.fail_uncovered = true,
            "--prometheus" => flags.prometheus = true,
            "--sample" => {
                let n = it.next().ok_or("--sample needs a divisor")?;
                flags.sample = Some(n.parse().map_err(|_| format!("--sample: bad divisor {n:?}"))?);
            }
            "--validate" => {
                let path = it.next().ok_or("--validate needs a file path")?;
                flags.validate = Some(PathBuf::from(path));
            }
            "--once" => flags.once = true,
            "--top" => {
                let n = it.next().ok_or("--top needs a row count")?;
                flags.top = Some(n.parse().map_err(|_| format!("--top: bad row count {n:?}"))?);
            }
            "--interval-ms" => {
                let n = it.next().ok_or("--interval-ms needs a millisecond count")?;
                flags.interval_ms =
                    Some(n.parse().map_err(|_| format!("--interval-ms: bad count {n:?}"))?);
            }
            _ => positional.push(arg.clone()),
        }
    }
    Ok((positional, flags))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, flags) = match split_flags(&args) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("check") => with_grammar(&args, &flags, 2, |g, a| {
            report(g, a);
            check_input(g, a, args.get(2), &flags)
        }),
        Some("dfa") => with_grammar(&args, &flags, 2, |g, a| {
            dump_dfas(g, a, args.get(2).map(String::as_str));
            Ok(())
        }),
        Some("atn") => with_grammar(&args, &flags, 2, |g, _| {
            println!("{}", Atn::from_grammar(g).to_dot(g));
            Ok(())
        }),
        Some("generate") => with_grammar(&args, &flags, 2, |g, a| {
            let code = generate_with(
                g,
                a,
                CodegenOptions {
                    trace: flags.trace,
                    coverage: flags.coverage,
                    metrics: flags.metrics,
                },
            )?;
            match args.get(2) {
                Some(path) => {
                    std::fs::write(path, code).map_err(|e| e.to_string())?;
                    eprintln!("wrote {path}");
                }
                None => print!("{code}"),
            }
            Ok(())
        }),
        Some("compile") => with_grammar(&args, &flags, 3, |g, a| {
            let out = &args[2];
            std::fs::write(out, serialize_analysis(g, a)).map_err(|e| e.to_string())?;
            eprintln!("wrote serialized lookahead DFAs to {out}");
            Ok(())
        }),
        Some("profile") => {
            with_grammar(&args, &flags, 2, |g, a| profile(g, a, args.get(2), &flags))
        }
        Some("coverage") => with_grammar(&args, &flags, 3, |g, a| coverage(g, a, &args[2], &flags)),
        Some("metrics") => match &flags.validate {
            Some(path) => validate_prometheus_file(path),
            None => with_grammar(&args, &flags, 3, |g, a| metrics_cmd(g, a, &args[2], &flags)),
        },
        Some("watch") => watch(&args, &flags),
        Some("parse") => with_grammar(&args, &flags, 4, |g, a| {
            let rule = &args[2];
            // Optional: --dfa <file> loads pre-compiled DFAs instead of
            // the freshly computed analysis.
            let loaded;
            let a = if let Some(pos) = args.iter().position(|x| x == "--dfa") {
                let path = args.get(pos + 1).ok_or("--dfa needs a file")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                loaded = deserialize_analysis(g, &text).map_err(|e| e.to_string())?;
                &loaded
            } else {
                a
            };
            let input =
                std::fs::read_to_string(&args[3]).map_err(|e| format!("{}: {e}", args[3]))?;
            let (tree, stats) = parse_text(g, a, &input, rule, NopHooks)?;
            println!("{}", tree.to_sexpr(g, &input));
            eprintln!(
                "ok: {} tokens, {} decision events, avg lookahead {:.2}, {} backtracks",
                tree.token_count(),
                stats.total_events(),
                stats.avg_lookahead(),
                stats.total_backtrack_events()
            );
            Ok(())
        }),
        _ => {
            eprintln!(
                "usage: llstar <check|dfa|atn|generate|parse> <grammar.g> …\n\
                 \n\
                 llstar check    <grammar.g> [input]        validate + analysis report\n\
                 llstar dfa      <grammar.g> [rule]         print lookahead DFAs\n\
                 llstar atn      <grammar.g>                ATN as Graphviz dot\n\
                 llstar generate <grammar.g> [out.rs]       emit a Rust parser\n\
                 llstar compile  <grammar.g> <out.dfa>      serialize lookahead DFAs\n\
                 llstar parse    <grammar.g> <rule> <file> [--dfa f]  parse a file\n\
                 llstar profile  <grammar.g> [input]        per-decision analysis + runtime costs\n\
                 llstar coverage <grammar.g> <corpus>       corpus coverage + hotspot report\n\
                 llstar metrics  <grammar.g> <corpus>       parse corpus, report metric counters\n\
                 llstar watch    <metrics.jsonl>            live dashboard over a metrics stream\n\
                 \n\
                 shared flags (check/dfa/generate/compile/parse/profile/coverage):\n\
                 --jobs N       analysis worker threads (0 = all cores, 1 = sequential)\n\
                 --cache <dir>  reuse serialized analyses keyed by grammar hash\n\
                 -v, --verbose  extra diagnostics (cache lookup metrics)\n\
                 \n\
                 check/profile flags:\n\
                 --rule <name>  start rule for the runtime trace (default: first rule)\n\
                 --json <path>  export analysis records / diagnostics as JSONL\n\
                 --diagnostics  recover from syntax errors, report all of them\n\
                 --max-errors N cap collected diagnostics (implies --diagnostics)\n\
                 --sample N     keep 1 in N prediction windows in the profile trace\n\
                 \n\
                 generate flags:\n\
                 --trace        emit Hooks::trace callbacks in the generated parser\n\
                 --coverage     emit coverage counters in the generated parser\n\
                 --metrics      emit metric counters in the generated parser\n\
                 \n\
                 metrics flags (corpus = a directory of .txt inputs or one file):\n\
                 --rule <name>      start rule (default: first rule)\n\
                 --prometheus       print Prometheus text exposition instead of the table\n\
                 --json <path>      write a schema-versioned metrics JSONL stream\n\
                 --validate <file>  check a Prometheus exposition file, no parsing\n\
                 \n\
                 watch flags:\n\
                 --once             render one frame and exit\n\
                 --top N            dashboard rows (default 10)\n\
                 --interval-ms N    refresh period (default 1000)\n\
                 \n\
                 coverage flags (corpus = a directory of .txt inputs, one input\n\
                 file, or a trace/profile .jsonl to replay):\n\
                 --rule <name>        start rule (default: first rule)\n\
                 --json <path>        write the merged coverage map as JSON\n\
                 --chrome-trace <f>   export Chrome trace_event JSON (chrome://tracing)\n\
                 --fail-uncovered     exit non-zero if any alternative stays uncovered"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn with_grammar(
    args: &[String],
    flags: &Flags,
    min_args: usize,
    f: impl FnOnce(&Grammar, &GrammarAnalysis) -> Result<(), String>,
) -> Result<(), String> {
    if args.len() < min_args {
        return Err("missing arguments (run with no arguments for usage)".into());
    }
    let path = &args[1];
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let grammar = apply_peg_mode(parse_grammar(&source).map_err(|e| e.to_string())?);
    let mut fatal = false;
    for issue in validate(&grammar) {
        if issue.is_error() {
            eprintln!("error: {issue}");
            fatal = true;
        } else {
            eprintln!("warning: {issue}");
        }
    }
    if fatal {
        return Err("grammar has errors".into());
    }
    let mut options = AnalysisOptions::from_grammar(&grammar);
    if let Some(jobs) = flags.jobs {
        options.threads = jobs;
    }
    let analysis = match &flags.cache {
        Some(dir) => {
            let cache_file = cache_path(dir, &grammar);
            let mut metrics = CacheMetrics::default();
            let (analysis, status) =
                analyze_cached_metered(&grammar, &cache_file, &options, &mut metrics)
                    .map_err(|e| format!("{}: {e}", cache_file.display()))?;
            eprintln!("analysis cache: {status} ({})", cache_file.display());
            if flags.verbose {
                eprintln!("{metrics}");
            }
            analysis
        }
        None => analyze_with(&grammar, &options),
    };
    f(&grammar, &analysis)
}

/// `llstar check <grammar.g> [input]`: when an input file is given,
/// parses it — strictly, or with error recovery when `--diagnostics` /
/// `--max-errors` are set, rendering every collected diagnostic as an
/// annotated snippet (and as JSONL via `--json`).
fn check_input(
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    input: Option<&String>,
    flags: &Flags,
) -> Result<(), String> {
    let Some(path) = input else { return Ok(()) };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let rule = match &flags.rule {
        Some(name) => name.clone(),
        None => grammar.start_rule().name.clone(),
    };
    match flags.recovery() {
        Some(max_errors) => {
            let (tree, errors, stats) = llstar::runtime::parse_text_recovering(
                grammar, analysis, &text, &rule, NopHooks, max_errors,
            )?;
            let diags = Diagnostic::from_errors(grammar, &errors);
            if let Some(json) = &flags.json {
                std::fs::write(json, diagnostics_jsonl(&diags))
                    .map_err(|e| format!("{}: {e}", json.display()))?;
                eprintln!("wrote {} diagnostics to {}", diags.len(), json.display());
            }
            if diags.is_empty() {
                println!("parse ok: {} tokens from rule {rule}", tree.token_count());
            } else {
                print!("{}", render_all(&diags, &text, path));
                println!(
                    "{} syntax error{} recovered ({} deleted, {} inserted, {} skipped); \
                     {} tokens matched",
                    diags.len(),
                    if diags.len() == 1 { "" } else { "s" },
                    stats.tokens_deleted,
                    stats.tokens_inserted,
                    stats.tokens_skipped,
                    tree.token_count()
                );
            }
            Ok(())
        }
        None => {
            let (tree, _) = parse_text(grammar, analysis, &text, &rule, NopHooks)?;
            println!("parse ok: {} tokens from rule {rule}", tree.token_count());
            Ok(())
        }
    }
}

/// `llstar profile`: one row per decision, static analysis cost on the
/// left, observed runtime behaviour (when an input was parsed) on the
/// right — the paper's Tables 1–4 for a single grammar.
fn profile(
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    input: Option<&String>,
    flags: &Flags,
) -> Result<(), String> {
    let mut sink = RingSink::unbounded();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let stats: Option<ParseStats> = match input {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let rule = match &flags.rule {
                Some(name) => name.clone(),
                None => grammar.start_rule().name.clone(),
            };
            // `--sample N` thins the recorded stream to 1 in N top-level
            // prediction windows; the parse itself is unaffected.
            let mut sampler;
            let traced: &mut dyn TraceSink = match flags.sample {
                Some(n) => {
                    sampler = llstar::runtime::SamplingSink::new(&mut sink, n);
                    &mut sampler
                }
                None => &mut sink,
            };
            let stats = match flags.recovery() {
                Some(max_errors) => {
                    let (_, errors, stats) = parse_text_recovering_traced(
                        grammar, analysis, &text, &rule, NopHooks, max_errors, traced,
                    )?;
                    diags = Diagnostic::from_errors(grammar, &errors);
                    if !diags.is_empty() {
                        eprint!("{}", render_all(&diags, &text, path));
                    }
                    stats
                }
                None => {
                    let (_, stats) =
                        parse_text_traced(grammar, analysis, &text, &rule, NopHooks, traced)?;
                    stats
                }
            };
            match flags.sample {
                Some(n) => eprintln!(
                    "parsed {path} from rule {rule}: {} trace events kept (1 in {n} windows)",
                    sink.seen()
                ),
                None => eprintln!("parsed {path} from rule {rule}: {} trace events", sink.seen()),
            }
            Some(stats)
        }
        None => None,
    };

    println!(
        "{:<4} {:<14} {:<9} | {:>8} {:>8} {:>6} {:>6} {:>9} {:<14} | {:>7} {:>6} {:>6} {:>6} {:>8}",
        "dec",
        "rule",
        "class",
        "closures",
        "configs",
        "states",
        "edges",
        "time",
        "fallback",
        "events",
        "avg-k",
        "max-k",
        "backs",
        "max-spec"
    );
    for d in &analysis.atn.decisions {
        if !d.is_grammar_decision() {
            continue;
        }
        let da = analysis.decision(d.id);
        let m = &da.metrics;
        let time =
            if analysis.from_cache { "cached".to_string() } else { format!("{:?}", da.elapsed) };
        let fallback = m.fallback.map_or("-".to_string(), |r| r.to_string());
        let (events, avg_k, max_k, backs, max_spec) = match &stats {
            Some(s) => {
                let ds = s.decision(d.id);
                let avg = if ds.events > 0 {
                    format!("{:.1}", ds.lookahead_sum as f64 / ds.events as f64)
                } else {
                    "-".to_string()
                };
                (
                    ds.events.to_string(),
                    avg,
                    ds.max_lookahead.to_string(),
                    ds.backtrack_events.to_string(),
                    ds.backtrack_depth_max.to_string(),
                )
            }
            None => ("-".into(), "-".into(), "-".into(), "-".into(), "-".into()),
        };
        println!(
            "d{:<3} {:<14} {:<9} | {:>8} {:>8} {:>6} {:>6} {:>9} {:<14} | {:>7} {:>6} {:>6} {:>6} {:>8}",
            d.id.0,
            grammar.rule(d.rule).name,
            da.dfa.classify().to_string(),
            m.closure_calls,
            m.configs_created,
            m.dfa_states,
            m.dfa_edges,
            time,
            fallback,
            events,
            avg_k,
            max_k,
            backs,
            max_spec
        );
    }
    let total = analysis.total_metrics();
    println!(
        "total: {} builds, {} closure calls, {} configs, {} DFA states, {} edges, analyzed in {:?}",
        total.dfa_builds,
        total.closure_calls,
        total.configs_created,
        total.dfa_states,
        total.dfa_edges,
        analysis.elapsed
    );
    if let Some(s) = &stats {
        println!(
            "runtime: {} events over {} decisions, avg lookahead {:.2}, max {}, \
             {} backtracks, {} memo hits, {} memo entries",
            s.total_events(),
            s.decisions_covered(),
            s.avg_lookahead(),
            s.max_lookahead(),
            s.total_backtrack_events(),
            s.memo_hits,
            s.memo_entries
        );
        if s.recoveries > 0 || flags.recovery().is_some() {
            println!(
                "recovery: {} diagnostics, {} recoveries, {} tokens deleted, \
                 {} inserted, {} skipped",
                diags.len(),
                s.recoveries,
                s.tokens_deleted,
                s.tokens_inserted,
                s.tokens_skipped
            );
        }
    }

    if let Some(path) = &flags.json {
        let mut out = schema::StreamKind::Profile.header_line();
        out.push('\n');
        let mut lines = 1usize;
        for d in &analysis.atn.decisions {
            if !d.is_grammar_decision() {
                continue;
            }
            let da = analysis.decision(d.id);
            let record = AnalysisRecord {
                decision: d.id.0,
                rule: grammar.rule(d.rule).name.clone(),
                class: da.dfa.classify().to_string(),
                metrics: da.metrics,
            };
            out.push_str(&record.to_json());
            out.push('\n');
            lines += 1;
        }
        for event in sink.events() {
            out.push_str(&event.to_json());
            out.push('\n');
            lines += 1;
        }
        // Diagnostics are appended line-by-line (not via
        // `diagnostics_jsonl`, whose own header belongs to standalone
        // diagnostics streams, not mid-way through a profile stream).
        for d in &diags {
            out.push_str(&d.to_json());
            out.push('\n');
            lines += 1;
        }
        std::fs::write(path, out).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote {lines} JSONL lines to {}", path.display());
    }
    Ok(())
}

/// `llstar coverage <grammar.g> <corpus>`: merges runtime coverage
/// across a corpus (directory of `.txt` inputs, one input file, or a
/// recorded trace/profile `.jsonl` replayed offline), then renders the
/// annotated grammar, the per-decision hotspot table, and — on request —
/// the stable JSON map and a Chrome `trace_event` export.
fn coverage(
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    corpus: &str,
    flags: &Flags,
) -> Result<(), String> {
    let corpus_path = Path::new(corpus);
    let mut sink = CoverageSink::new(grammar, analysis);
    let mut ring = RingSink::unbounded();
    let mut nanos: Option<Vec<u64>> = None;

    if corpus_path.extension().is_some_and(|e| e == "jsonl") {
        // Offline replay: fold a recorded event stream. No wall-clock
        // data exists here, so the hotspot table ranks by predictions.
        let text = std::fs::read_to_string(corpus_path).map_err(|e| format!("{corpus}: {e}"))?;
        let events = replay_events(&text).map_err(|e| format!("{corpus}: {e}"))?;
        for event in &events {
            sink.event(event);
        }
        sink.finish_file();
        eprintln!("replayed {} trace events from {corpus}", events.len());
        if let Some(out) = &flags.chrome_trace {
            std::fs::write(out, chrome_trace(&events, grammar, analysis))
                .map_err(|e| format!("{}: {e}", out.display()))?;
            eprintln!("wrote Chrome trace to {}", out.display());
        }
    } else {
        let files = corpus_inputs(corpus_path)?;
        let rule = match &flags.rule {
            Some(name) => name.clone(),
            None => grammar.start_rule().name.clone(),
        };
        let want_events = flags.chrome_trace.is_some();
        let mut total = vec![0u64; analysis.atn.decisions.len()];
        for file in &files {
            let input =
                std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
            let scanner = grammar.lexer.build().map_err(|e| e.to_string())?;
            let tokens =
                scanner.tokenize(&input).map_err(|e| format!("{}: {e}", file.display()))?;
            let mut tee;
            let mut parser = Parser::new(grammar, analysis, TokenStream::new(tokens), NopHooks);
            parser.enable_decision_timing();
            if want_events {
                tee = TeeSink(&mut ring, &mut sink);
                parser.set_trace_sink(&mut tee);
            } else {
                parser.set_trace_sink(&mut sink);
            }
            parser.parse_to_eof(&rule).map_err(|e| format!("{}: {e}", file.display()))?;
            if let Some(per_file) = parser.decision_nanos() {
                for (slot, t) in total.iter_mut().zip(per_file) {
                    *slot += t;
                }
            }
            sink.finish_file();
        }
        nanos = Some(total);
        eprintln!("parsed {} corpus file(s) from rule {rule}", files.len());
        if let Some(out) = &flags.chrome_trace {
            let events: Vec<TraceEvent> = ring.events().cloned().collect();
            std::fs::write(out, chrome_trace(&events, grammar, analysis))
                .map_err(|e| format!("{}: {e}", out.display()))?;
            eprintln!("wrote Chrome trace to {}", out.display());
        }
    }

    let map = sink.into_map();
    print!("{}", map.annotated_report(grammar, analysis));
    println!();
    print!("{}", map.hotspot_table(grammar, analysis, nanos.as_deref()));
    println!("{}", map.summary(grammar));
    if let Some(out) = &flags.json {
        let mut json = map.to_json();
        json.push('\n');
        std::fs::write(out, json).map_err(|e| format!("{}: {e}", out.display()))?;
        eprintln!("wrote coverage JSON to {}", out.display());
    }
    if flags.fail_uncovered {
        let uncovered = map.uncovered_alts();
        if !uncovered.is_empty() {
            let names: Vec<String> = uncovered
                .iter()
                .map(|&(rule, alt)| format!("{} alt {}", grammar.rules[rule].name, alt + 1))
                .collect();
            return Err(format!(
                "{} uncovered alternative(s): {}",
                uncovered.len(),
                names.join(", ")
            ));
        }
    }
    Ok(())
}

/// `llstar metrics <grammar.g> <corpus>`: parses the corpus through one
/// re-entrant [`ParseSession`] (the always-on counters accumulating
/// across inputs) and reports them — a human summary table by default,
/// Prometheus text exposition with `--prometheus`, plus a
/// schema-versioned `metrics v1` JSONL stream with `--json <path>`
/// (the file `llstar watch` tails).
fn metrics_cmd(
    grammar: &Grammar,
    analysis: &GrammarAnalysis,
    corpus: &str,
    flags: &Flags,
) -> Result<(), String> {
    let files = corpus_inputs(Path::new(corpus))?;
    let rule = match &flags.rule {
        Some(name) => name.clone(),
        None => grammar.start_rule().name.clone(),
    };
    let mut session =
        ParseSession::new(grammar, analysis, &rule, NopHooks).map_err(|e| e.to_string())?;
    for file in &files {
        let input =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        session.parse_to_eof(&input).map_err(|e| format!("{}: {e}", file.display()))?;
    }
    eprintln!("parsed {} corpus file(s) from rule {rule}", files.len());
    let snap = session.metrics();

    if flags.prometheus {
        print!("{}", snap.to_prometheus("session"));
    } else {
        print!("{}", metrics_table(snap, flags.top.unwrap_or(usize::MAX)));
    }
    if let Some(out) = &flags.json {
        let mut text = MetricsSnapshot::stream_header();
        text.push('\n');
        text.push_str(&snap.to_json("session", true));
        text.push('\n');
        std::fs::write(out, text).map_err(|e| format!("{}: {e}", out.display()))?;
        eprintln!("wrote metrics JSONL to {}", out.display());
    }
    Ok(())
}

/// `llstar metrics --validate <file>`: checks a Prometheus text
/// exposition file (our own or anyone's) without parsing a corpus.
fn validate_prometheus_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let samples = validate_prometheus(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("{}: valid Prometheus exposition, {samples} samples", path.display());
    Ok(())
}

/// The `llstar metrics` / `llstar watch` summary: totals line, latency
/// quantiles, then the hottest decisions (by prediction events).
fn metrics_table(snap: &MetricsSnapshot, top: usize) -> String {
    use llstar::runtime::metrics::hist_quantile;
    let mut out = String::new();
    let events: u64 = snap.decisions.iter().map(|d| d.counters.events).sum();
    let secs = snap.elapsed_micros as f64 / 1e6;
    let rate =
        if secs > 0.0 { format!("{:.0} tok/s", snap.tokens as f64 / secs) } else { "-".into() };
    out.push_str(&format!(
        "grammar {:016x}: {} parses, {} tokens ({rate}), {} decision events, \
         memo {:.1}% hit ({} hits / {} entries)\n",
        snap.fingerprint,
        snap.parses,
        snap.tokens,
        events,
        snap.memo_hit_pct(),
        snap.memo_hits,
        snap.memo_entries,
    ));
    if snap.elapsed_micros > 0 {
        out.push_str(&format!(
            "latency: p50 {}us, p99 {}us per parse\n",
            hist_quantile(&snap.latency_hist, 0.50),
            hist_quantile(&snap.latency_hist, 0.99),
        ));
    }
    out.push_str(&format!(
        "{:<5} {:<16} {:>10} {:>7} {:>6} {:>6} {:>6} {:>6} {:>8}\n",
        "dec", "rule", "events", "share", "p50-k", "p99-k", "max-k", "back%", "spec/ev"
    ));
    let mut rows: Vec<_> = snap.decisions.iter().collect();
    rows.sort_by(|a, b| {
        b.counters.events.cmp(&a.counters.events).then(a.decision.cmp(&b.decision))
    });
    for d in rows.into_iter().take(top) {
        let c = &d.counters;
        out.push_str(&format!(
            "d{:<4} {:<16} {:>10} {:>6.1}% {:>6} {:>6} {:>6} {:>5.1}% {:>8.2}\n",
            d.decision,
            d.rule,
            c.events,
            100.0 * c.events as f64 / events.max(1) as f64,
            c.p50_lookahead(),
            c.p99_lookahead(),
            c.la_max,
            100.0 * c.backtracks as f64 / c.events.max(1) as f64,
            c.spec_sum as f64 / c.events.max(1) as f64,
        ));
    }
    out
}

/// `llstar watch <metrics.jsonl>`: refresh-in-place dashboard over a
/// metrics stream. Each frame re-reads the file, takes the latest
/// snapshot line (lines are cumulative), and renders the hot-decision
/// table plus an events/sec rate derived from the previous frame.
/// `--once` renders a single frame without clearing the screen (and
/// fails loudly when the file is missing or malformed).
fn watch(args: &[String], flags: &Flags) -> Result<(), String> {
    let path = args
        .get(1)
        .ok_or("usage: llstar watch <metrics.jsonl> [--once] [--top N] [--interval-ms N]")?;
    let top = flags.top.unwrap_or(10);
    let interval = std::time::Duration::from_millis(flags.interval_ms.unwrap_or(1000));
    let mut prev: Option<(u64, u64, std::time::Instant)> = None;
    loop {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let snaps = parse_metrics_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
                match snaps.last() {
                    Some((engine, snap)) => {
                        let now = std::time::Instant::now();
                        let events: u64 = snap.decisions.iter().map(|d| d.counters.events).sum();
                        let rate = prev.map(|(pe, pt, at)| {
                            let dt = now.duration_since(at).as_secs_f64().max(1e-9);
                            (
                                (events.saturating_sub(pe)) as f64 / dt,
                                (snap.tokens.saturating_sub(pt)) as f64 / dt,
                            )
                        });
                        if !flags.once {
                            // Clear screen, home cursor: refresh in place.
                            print!("\x1b[2J\x1b[H");
                        }
                        println!("llstar watch — {path} (engine {engine})");
                        match rate {
                            Some((ev, tok)) => {
                                println!("rate: {ev:.0} events/s, {tok:.0} tokens/s")
                            }
                            None => println!("rate: warming up"),
                        }
                        print!("{}", metrics_table(snap, top));
                        use std::io::Write as _;
                        let _ = std::io::stdout().flush();
                        prev = Some((events, snap.tokens, now));
                    }
                    None if flags.once => return Err(format!("{path}: no metrics snapshot lines")),
                    None => println!("{path}: no metrics snapshot lines yet"),
                }
            }
            Err(e) if flags.once => return Err(format!("{path}: {e}")),
            Err(e) => println!("waiting for {path}: {e}"),
        }
        if flags.once {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// The corpus inputs behind a path: every `*.txt` in a directory
/// (sorted by name for deterministic merges), or the file itself.
fn corpus_inputs(path: &Path) -> Result<Vec<PathBuf>, String> {
    if !path.is_dir() {
        return Ok(vec![path.to_path_buf()]);
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(path)
        .map_err(|e| format!("{}: {e}", path.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{}: no .txt corpus files found", path.display()));
    }
    Ok(files)
}

/// Parses trace events out of a recorded JSONL stream for replay. Both
/// pure `trace` streams and mixed `profile --json` streams are accepted
/// (analysis records and diagnostics are skipped); the schema header is
/// validated when present.
fn replay_events(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    let mut first = true;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if std::mem::take(&mut first) {
            if let Some((stream, _)) = schema::parse_schema_header(&value) {
                let expected = match stream {
                    "profile" => schema::StreamKind::Profile,
                    _ => schema::StreamKind::Trace,
                };
                schema::check_header(&value, expected)
                    .map_err(|e| format!("line {}: {e}", i + 1))?;
                continue;
            }
        }
        match value.get("type").and_then(Json::as_str) {
            Some("analysis") | Some("diagnostic") | Some("schema") => continue,
            _ => events
                .push(TraceEvent::from_json(&value).map_err(|e| format!("line {}: {e}", i + 1))?),
        }
    }
    Ok(events)
}

fn report(grammar: &Grammar, analysis: &GrammarAnalysis) {
    println!(
        "grammar {}: {} rules, {} tokens, {} decisions, analyzed in {:?}",
        grammar.name,
        grammar.rules.len(),
        grammar.vocab.len(),
        analysis.atn.decisions.iter().filter(|d| d.is_grammar_decision()).count(),
        analysis.elapsed
    );
    let (mut fixed, mut cyclic, mut backtrack) = (0, 0, 0);
    for d in &analysis.atn.decisions {
        if !d.is_grammar_decision() {
            continue;
        }
        let da = analysis.decision(d.id);
        match da.dfa.classify() {
            DecisionClass::Fixed { .. } => fixed += 1,
            DecisionClass::Cyclic => cyclic += 1,
            DecisionClass::Backtrack => backtrack += 1,
        }
        for warning in &da.warnings {
            println!(
                "warning: rule {}, decision d{}: {warning:?}",
                grammar.rule(d.rule).name,
                d.id.0
            );
        }
    }
    println!("decision classes: {fixed} fixed LL(k), {cyclic} cyclic, {backtrack} backtracking");
    if let Some(classes) = analysis.tables.classes() {
        let (dense, displaced, bytes) = analysis.tables.summary();
        println!(
            "compiled tables: {} token classes; {dense} dense, {displaced} row-displaced \
             ({bytes} bytes)",
            classes.num_classes()
        );
    } else {
        println!("compiled tables: disabled (over 256 token classes); linear dispatch");
    }
    if analysis.from_cache {
        println!("analysis loaded from cache; DFA construction skipped");
    } else if let Some(slowest) =
        analysis.decisions.iter().max_by_key(|d| d.elapsed).filter(|d| !d.elapsed.is_zero())
    {
        let d = &analysis.atn.decisions[slowest.decision.index()];
        println!(
            "slowest decision: d{} in rule {} ({:?} of {:?} total)",
            slowest.decision.0,
            grammar.rule(d.rule).name,
            slowest.elapsed,
            analysis.elapsed
        );
    }
}

fn dump_dfas(grammar: &Grammar, analysis: &GrammarAnalysis, rule_filter: Option<&str>) {
    for d in &analysis.atn.decisions {
        if !d.is_grammar_decision() {
            continue;
        }
        let rule_name = &grammar.rule(d.rule).name;
        if let Some(filter) = rule_filter {
            if rule_name != filter {
                continue;
            }
        }
        let da = analysis.decision(d.id);
        println!(
            "== decision d{} in rule {rule_name} ({:?}, {:?})",
            d.id.0,
            d.kind,
            da.dfa.classify()
        );
        print!("{}", da.dfa.to_pretty(grammar));
    }
}
