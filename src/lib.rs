//! LL(*) parser generator — umbrella crate re-exporting the workspace.
#![warn(missing_docs)]

pub use llstar_codegen as codegen;
pub use llstar_core as core;
pub use llstar_grammar as grammar;
pub use llstar_lexer as lexer;
pub use llstar_packrat as packrat;
pub use llstar_runtime as runtime;
pub use llstar_suite as suite;
